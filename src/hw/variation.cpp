#include "hw/variation.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vapb::hw {

namespace {

double truncated(util::Rng& rng, double sd, double lo, double hi) {
  if (sd <= 0.0) return 1.0;
  VAPB_REQUIRE_MSG(lo < hi, "variation bounds must satisfy lo < hi");
  return rng.truncated_normal(1.0, sd, lo, hi);
}

/// Correlated standard-normal pair -> two truncated scales. We draw z1, z2
/// with corr rho and map each through mean-1 truncation by clamping; the
/// slight distortion from clamping is irrelevant at these small sigmas.
std::pair<double, double> correlated_pair(util::Rng& rng, double rho,
                                          double sd1, double lo1, double hi1,
                                          double sd2, double lo2, double hi2) {
  double z1 = rng.normal();
  double z2 = rho * z1 + std::sqrt(std::max(0.0, 1.0 - rho * rho)) * rng.normal();
  auto map = [](double z, double sd, double lo, double hi) {
    if (sd <= 0.0) return 1.0;
    return std::clamp(1.0 + sd * z, lo, hi);
  };
  return {map(z1, sd1, lo1, hi1), map(z2, sd2, lo2, hi2)};
}

}  // namespace

ModuleVariation draw_variation(const VariationDistribution& dist,
                               const util::SeedSequence& fab_seed,
                               std::uint64_t module_id) {
  util::Rng rng(fab_seed.fork("module-variation", module_id));
  ModuleVariation v;
  auto [dyn, stat] = correlated_pair(
      rng, dist.cpu_dyn_static_corr, dist.cpu_dyn_sd, dist.cpu_dyn_lo,
      dist.cpu_dyn_hi, dist.cpu_static_sd, dist.cpu_static_lo,
      dist.cpu_static_hi);
  v.cpu_dyn = dyn;
  v.cpu_static = stat;
  v.dram = truncated(rng, dist.dram_sd, dist.dram_lo, dist.dram_hi);
  if (dist.freq_sd > 0.0) {
    // Couple frequency capability to the module's CPU power deviation with
    // the configured correlation (negative on Teller).
    // vapb-lint: allow(unit-suffix): standardized (z-score) power deviation
    double power_dev = (v.cpu_dyn - 1.0) / std::max(dist.cpu_dyn_sd, 1e-12);
    double rho = dist.freq_power_corr;
    double z = rho * power_dev +
               std::sqrt(std::max(0.0, 1.0 - rho * rho)) * rng.normal();
    v.freq = std::clamp(1.0 + dist.freq_sd * z, dist.freq_lo, dist.freq_hi);
  }
  return v;
}

}  // namespace vapb::hw
