// Power measurement technique models (paper Table 1):
//
//   RAPL         — model-based, reports *average* power, 1 ms granularity,
//                  supports capping.
//   PowerInsight — sensor harness, instantaneous samples at 1 ms (or less),
//                  no capping.
//   BG/Q EMON    — DCA microcontroller, instantaneous samples at 300 ms,
//                  node-board granularity, no capping.
//
// The sensor model adds two noise sources to the ground-truth power: the
// workload's own power fluctuation (visible to instantaneous sensors,
// averaged away by RAPL) and the technique's measurement error.
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace vapb::hw {

enum class SensorKind { kRapl, kPowerInsight, kBgqEmon };

struct SensorSpec {
  SensorKind kind;
  std::string name;
  std::string reported;        ///< "Average" or "Instantaneous"
  double sample_interval_s;    ///< reporting granularity
  bool supports_capping;
  double instrument_noise_frac;  ///< sd of per-sample instrument error
  bool averages_workload_noise;  ///< true for RAPL's windowed average
};

/// Static description of a measurement technique (Table 1 row).
const SensorSpec& sensor_spec(SensorKind kind);

/// All specs, in Table 1 order.
const std::vector<SensorSpec>& all_sensor_specs();

/// Measurement model over a ground-truth power level.
class Sensor {
 public:
  /// `workload_noise_frac` is the sd of the workload's instantaneous power
  /// fluctuation around its sustained mean.
  Sensor(SensorKind kind, util::SeedSequence seed,
         double workload_noise_frac = 0.01);

  [[nodiscard]] const SensorSpec& spec() const { return spec_; }

  /// One reported sample while true sustained power is `true_power_w`.
  [[nodiscard]] double sample_w(double true_power_w);

  /// Mean of the samples collected over `duration_s` (>= 1 sample).
  [[nodiscard]] double measure_avg_w(double true_power_w, double duration_s);

  /// Full sample series over `duration_s`.
  [[nodiscard]] std::vector<double> series_w(double true_power_w,
                                             double duration_s);

 private:
  SensorSpec spec_;
  util::Rng rng_;
  double workload_noise_frac_;
};

}  // namespace vapb::hw
