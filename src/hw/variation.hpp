// Manufacturing-variation model.
//
// Each module (one processor socket + its DRAM, the paper's unit of power
// control) carries a set of multiplicative scales relative to the fleet
// average. The scales are drawn once per module at "fabrication time" from
// per-architecture truncated-normal distributions calibrated against the
// spreads the paper measured (Section 4): up to 23% CPU power spread on Cab,
// 11% on Vulcan, 21% power + 17% performance spread on Teller, and module
// Vp 1.2-1.5 / DRAM Vp ~2.8 on HA8K.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace vapb::hw {

/// Per-module variation scales (1.0 = fleet average).
struct ModuleVariation {
  /// Scale on the frequency-dependent (dynamic/switching) CPU power term.
  double cpu_dyn = 1.0;
  /// Scale on the frequency-independent (leakage/static) CPU power term.
  double cpu_static = 1.0;
  /// Scale on DRAM power (both terms; DRAM variation is dominated by
  /// die-to-die differences, not frequency mix).
  double dram = 1.0;
  /// Scale on the achievable maximum frequency. 1.0 on architectures with
  /// strict frequency binning (Intel, IBM); spread on Teller, where the paper
  /// observed 17% performance variation.
  // vapb-lint: allow(unit-suffix): dimensionless scale on fmax, not a frequency
  double freq = 1.0;
};

/// Distribution parameters for one architecture.
struct VariationDistribution {
  // Truncated normal: mean 1.0, given sd, truncated to [lo, hi].
  double cpu_dyn_sd = 0.0;
  double cpu_dyn_lo = 1.0, cpu_dyn_hi = 1.0;
  double cpu_static_sd = 0.0;
  double cpu_static_lo = 1.0, cpu_static_hi = 1.0;
  double dram_sd = 0.0;
  double dram_lo = 1.0, dram_hi = 1.0;
  // vapb-lint: allow(unit-suffix): sd/bounds of a dimensionless scale factor
  double freq_sd = 0.0;
  // vapb-lint: allow(unit-suffix): sd/bounds of a dimensionless scale factor
  double freq_lo = 1.0, freq_hi = 1.0;

  /// Correlation between the dynamic and static CPU scales (the same die has
  /// correlated switching-capacitance and leakage deviations).
  double cpu_dyn_static_corr = 0.7;

  /// Correlation between frequency capability and CPU power. Positive on
  /// Teller: the paper observed processors that consumed *more* power
  /// performed *better* (Section 4.1; they describe it as a negative
  /// slowdown-vs-power correlation), presumably a different binning strategy.
  /// Applied only when freq_sd > 0.
  // vapb-lint: allow(unit-suffix): correlation coefficient, dimensionless
  double freq_power_corr = 0.0;
};

/// Draws the variation scales for module `module_id`. The draw depends only
/// on (seed tree, module_id): the same module always gets the same silicon.
ModuleVariation draw_variation(const VariationDistribution& dist,
                               const util::SeedSequence& fab_seed,
                               std::uint64_t module_id);

}  // namespace vapb::hw
