// Architecture specifications for the four production systems the paper
// studies (Table 2), including the variation-distribution parameters
// calibrated against the spreads reported in Section 4.
#pragma once

#include <string>
#include <vector>

#include "hw/device_class.hpp"
#include "hw/ladder.hpp"
#include "hw/sensor.hpp"
#include "hw/variation.hpp"

namespace vapb::hw {

struct ArchSpec {
  std::string system;           ///< e.g. "Cab (LLNL)"
  std::string microarch;        ///< e.g. "Intel E5-2670 Sandy Bridge"
  int total_nodes = 0;
  int procs_per_node = 1;
  int cores_per_proc = 1;
  double nominal_freq_ghz = 0.0;
  int memory_per_node_gb = 0;
  double tdp_cpu_w = 0.0;       ///< per-processor TDP
  double tdp_dram_w = 0.0;      ///< per-module DRAM TDP (0 = unreported)
  SensorKind measurement = SensorKind::kRapl;
  bool supports_power_capping = false;
  bool dram_measurement_available = true;  ///< false on Cab (BIOS restriction)

  /// Granularity at which power is observed/controlled: "socket" or
  /// "node board" (Vulcan's EMON measures per node board).
  std::string module_granularity = "socket";

  FrequencyLadder ladder{1.0, 1.0, 0.1};
  VariationDistribution variation;

  /// Modules available for experiments (sockets, or node boards on Vulcan).
  [[nodiscard]] int total_modules() const {
    return total_nodes * procs_per_node;
  }
};

/// Cab (LLNL): Intel E5-2670 Sandy Bridge, 1,296 nodes x 2 sockets, RAPL.
/// Paper observed up to 23% CPU power spread, no performance spread.
ArchSpec cab();

/// Vulcan (LLNL): IBM BG/Q PowerPC A2. Power observed per node board
/// (32 compute cards); the paper used 48 node boards and saw 11% spread.
ArchSpec vulcan();

/// Teller (SNL): AMD A10-5800K Piledriver, PowerInsight. Both power (21%)
/// and performance (17%) spread, positively correlated.
ArchSpec teller();

/// HA8K (Kyushu): Intel E5-2697v2 Ivy Bridge, 960 nodes x 2 sockets = 1,920
/// modules; RAPL capping + DRAM measurement. The evaluation system.
ArchSpec ha8k();

/// All four, in Table 2 order.
std::vector<ArchSpec> all_archs();

/// Preset lookup by short name ("cab", "vulcan", "teller", "ha8k") — the
/// vocabulary vapbctl's --arch flag and service snapshots share. Throws
/// InvalidArgument (listing the valid names) for anything else.
ArchSpec arch_by_name(const std::string& name);

/// The short name of a preset ("ha8k" for the HA8K spec), matched on
/// `ArchSpec::system`; "" when `spec` is not one of the Table-2 presets
/// (e.g. loaded from an --arch-file).
std::string arch_short_name(const ArchSpec& spec);

/// The fabrication spec of one device class within `spec`.
///
/// kCpu is synthesized verbatim from the legacy fields (spec.variation,
/// spec.ladder, spec.tdp_cpu_w) plus the input-entropy response, so a CPU
/// class module is the same silicon the homogeneous path fabricates. kGpu
/// and kDram are derived from the architecture's CPU numbers with class
/// constants calibrated against Sinha et al.'s GPU-to-GPU spread (up to
/// ~2x the CPU spread, wide clock range, high TDP) and commodity DIMM
/// behaviour (low, nearly frequency-flat power, large die-to-die spread).
DeviceClassSpec device_class_spec(const ArchSpec& spec, DeviceClass c);

}  // namespace vapb::hw
