#include "hw/sensor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vapb::hw {

const std::vector<SensorSpec>& all_sensor_specs() {
  static const std::vector<SensorSpec> kSpecs = {
      {SensorKind::kRapl, "RAPL", "Average", 1e-3, true, 0.002, true},
      {SensorKind::kPowerInsight, "PowerInsight", "Instantaneous", 1e-3, false,
       0.01, false},
      {SensorKind::kBgqEmon, "BGQ EMON", "Instantaneous", 300e-3, false, 0.005,
       false},
  };
  return kSpecs;
}

const SensorSpec& sensor_spec(SensorKind kind) {
  for (const auto& s : all_sensor_specs()) {
    if (s.kind == kind) return s;
  }
  throw InvalidArgument("unknown sensor kind");
}

Sensor::Sensor(SensorKind kind, util::SeedSequence seed,
               double workload_noise_frac)
    : spec_(sensor_spec(kind)),
      rng_(seed),
      workload_noise_frac_(workload_noise_frac) {
  if (workload_noise_frac_ < 0.0) {
    throw InvalidArgument("Sensor: negative workload noise");
  }
}

double Sensor::sample_w(double true_power_w) {
  double p = true_power_w;
  if (!spec_.averages_workload_noise) {
    // Instantaneous sensors see the workload's own power fluctuation.
    p *= 1.0 + workload_noise_frac_ * rng_.normal();
  }
  p *= 1.0 + spec_.instrument_noise_frac * rng_.normal();
  return std::max(0.0, p);
}

double Sensor::measure_avg_w(double true_power_w, double duration_s) {
  if (duration_s <= 0.0) throw InvalidArgument("Sensor: duration must be > 0");
  auto n = static_cast<std::size_t>(
      std::max(1.0, duration_s / spec_.sample_interval_s));
  // Cap the loop: beyond ~1e4 samples the mean's noise is numerically
  // negligible; scale the residual error analytically instead.
  const std::size_t kMaxDraws = 10000;
  std::size_t draws = std::min(n, kMaxDraws);
  // Stateful sequential noise draws: the accumulation order is pinned to
  // the draw order, so this loop can never parallelize and its left-to-right
  // association is part of the committed golden digests.
  double sum = 0.0;
  // vapb-lint: allow(determinism-taint): fixed sequential draw order
  for (std::size_t i = 0; i < draws; ++i) sum += sample_w(true_power_w);
  double mean = sum / static_cast<double>(draws);
  if (draws < n) {
    // Shrink residual deviation as if we had taken all n samples.
    double shrink = std::sqrt(static_cast<double>(draws) /
                              static_cast<double>(n));
    mean = true_power_w + (mean - true_power_w) * shrink;
  }
  return mean;
}

std::vector<double> Sensor::series_w(double true_power_w, double duration_s) {
  if (duration_s <= 0.0) throw InvalidArgument("Sensor: duration must be > 0");
  auto n = static_cast<std::size_t>(
      std::max(1.0, duration_s / spec_.sample_interval_s));
  n = std::min<std::size_t>(n, 1000000);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample_w(true_power_w));
  return out;
}

}  // namespace vapb::hw
