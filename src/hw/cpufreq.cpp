#include "hw/cpufreq.hpp"

#include "util/error.hpp"

namespace vapb::hw {

void CpufreqGovernor::set_frequency(util::GigaHertz f) {
  if (f <= util::GigaHertz{0.0}) {
    throw InvalidArgument("CpufreqGovernor: frequency must be positive");
  }
  set_freq_ = util::GigaHertz{module_.ladder().quantize_down(f.value())};
}

void CpufreqGovernor::clear() { set_freq_.reset(); }

OperatingPoint CpufreqGovernor::operating_point(
    const PowerProfile& profile) const {
  OperatingPoint op;
  op.freq_ghz = set_freq_ ? set_freq_->value() : module_.ladder().fmax();
  op.perf_freq_ghz = op.freq_ghz;
  op.cpu_w = module_.cpu_power_w(profile, op.freq_ghz);
  op.dram_w = module_.dram_power_w(profile, op.freq_ghz);
  return op;
}

}  // namespace vapb::hw
