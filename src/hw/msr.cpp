#include "hw/msr.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace vapb::hw::msr {

std::uint64_t PowerUnits::encode() const {
  return (static_cast<std::uint64_t>(time_exp & 0xf) << 16) |
         (static_cast<std::uint64_t>(energy_exp & 0x1f) << 8) |
         (static_cast<std::uint64_t>(power_exp & 0xf));
}

PowerUnits PowerUnits::decode(std::uint64_t raw) {
  PowerUnits u;
  u.power_exp = static_cast<unsigned>(raw & 0xf);
  u.energy_exp = static_cast<unsigned>((raw >> 8) & 0x1f);
  u.time_exp = static_cast<unsigned>((raw >> 16) & 0xf);
  return u;
}

std::uint64_t encode_power_limit(const PowerLimit& limit,
                                 const PowerUnits& units) {
  if (limit.power_w < 0.0) {
    throw InvalidArgument("power limit must be non-negative");
  }
  auto power_units =
      static_cast<std::uint64_t>(std::llround(limit.power_w / units.power_unit_w()));
  if (power_units > 0x7fff) {
    throw InvalidArgument("power limit does not fit in 15 bits: " +
                          std::to_string(limit.power_w) + " W");
  }
  // Window = 2^Y * (1 + Z/4) time units. Pick the largest representable
  // value <= requested (Y in [0,31], Z in [0,3]).
  double target_units = limit.window_s / units.time_unit_s();
  unsigned best_y = 0, best_z = 0;
  double best = 1.0;
  for (unsigned y = 0; y < 32; ++y) {
    for (unsigned z = 0; z < 4; ++z) {
      double v = std::ldexp(1.0 + z / 4.0, static_cast<int>(y));
      if (v <= target_units + 1e-9 && v > best) {
        best = v;
        best_y = y;
        best_z = z;
      }
    }
  }
  std::uint64_t raw = power_units;
  if (limit.enabled) raw |= 1ull << 15;
  if (limit.clamp) raw |= 1ull << 16;
  raw |= static_cast<std::uint64_t>(best_y & 0x1f) << 17;
  raw |= static_cast<std::uint64_t>(best_z & 0x3) << 22;
  return raw;
}

PowerLimit decode_power_limit(std::uint64_t raw, const PowerUnits& units) {
  PowerLimit limit;
  limit.power_w = static_cast<double>(raw & 0x7fff) * units.power_unit_w();
  limit.enabled = (raw >> 15) & 1;
  limit.clamp = (raw >> 16) & 1;
  auto y = static_cast<unsigned>((raw >> 17) & 0x1f);
  auto z = static_cast<unsigned>((raw >> 22) & 0x3);
  limit.window_s =
      std::ldexp(1.0 + z / 4.0, static_cast<int>(y)) * units.time_unit_s();
  return limit;
}

namespace {
std::string detail_hex(std::uint32_t address) {
  std::ostringstream os;
  os << "0x" << std::hex << address;
  return os.str();
}
}  // namespace

MsrFile::MsrFile(Rapl& rapl, PowerUnits units) : rapl_(rapl), units_(units) {}

std::uint64_t MsrFile::read(std::uint32_t address) const {
  switch (address) {
    case kRaplPowerUnit:
      return units_.encode();
    case kPkgPowerLimit:
      return pkg_limit_raw_;
    case kDramPowerLimit:
      return dram_limit_raw_;
    case kPkgEnergyStatus: {
      double units_count = rapl_.pkg_energy_j() / units_.energy_unit_j();
      return static_cast<std::uint64_t>(units_count) & 0xffffffffull;
    }
    case kDramEnergyStatus: {
      double units_count = rapl_.dram_energy_j() / units_.energy_unit_j();
      return static_cast<std::uint64_t>(units_count) & 0xffffffffull;
    }
    default:
      throw MsrAccessError("read of MSR " + detail_hex(address) +
                           " denied by whitelist");
  }
}

void MsrFile::write(std::uint32_t address, std::uint64_t value) {
  switch (address) {
    case kPkgPowerLimit: {
      pkg_limit_raw_ = value;
      PowerLimit limit = decode_power_limit(value, units_);
      if (limit.enabled && limit.power_w > 0.0) {
        rapl_.set_cpu_limit(util::Watts{limit.power_w});
      } else {
        rapl_.clear_cpu_limit();
      }
      return;
    }
    case kDramPowerLimit:
      // Accepted but inert: DRAM capping is not supported on the paper's
      // production boards (Section 3.1.1).
      dram_limit_raw_ = value;
      return;
    default:
      throw MsrAccessError("write to MSR " + detail_hex(address) +
                           " denied by whitelist");
  }
}

void set_pkg_power_limit(MsrFile& file, double power_w, double window_s) {
  PowerLimit limit;
  limit.power_w = power_w;
  limit.window_s = window_s;
  limit.enabled = true;
  limit.clamp = true;
  file.write(kPkgPowerLimit, encode_power_limit(limit, file.units()));
}

void clear_pkg_power_limit(MsrFile& file) { file.write(kPkgPowerLimit, 0); }

double read_pkg_energy_j(const MsrFile& file) {
  return static_cast<double>(file.read(kPkgEnergyStatus)) *
         file.units().energy_unit_j();
}

double read_dram_energy_j(const MsrFile& file) {
  return static_cast<double>(file.read(kDramEnergyStatus)) *
         file.units().energy_unit_j();
}

}  // namespace vapb::hw::msr
