#include "hw/module.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vapb::hw {

Module::Module(ModuleId id, ModuleVariation variation, FrequencyLadder ladder,
               double tdp_cpu_w, util::SeedSequence fab_seed,
               DeviceClass device_class, ClassPowerModel class_power)
    : id_(id),
      variation_(variation),
      ladder_(std::move(ladder)),
      tdp_cpu_w_(tdp_cpu_w),
      fab_seed_(fab_seed),
      device_class_(device_class),
      class_power_(class_power) {
  if (tdp_cpu_w_ <= 0.0) throw ConfigError("Module: TDP must be positive");
}

double Module::max_freq_ghz(bool turbo) const {
  return (turbo ? ladder_.turbo() : ladder_.fmax()) * variation_.freq;
}

double Module::idiosyncrasy(const PowerProfile& p, std::uint64_t salt) const {
  if (p.idiosyncrasy_sd <= 0.0) return 1.0;
  util::Rng rng(
      fab_seed_.fork("idiosyncrasy", id_ ^ (util::fnv1a(p.name) + salt)));
  // Clamp at 3 sigma so a pathological sd cannot produce negative power.
  double z = std::clamp(rng.normal(), -3.0, 3.0);
  return std::max(0.05, 1.0 + p.idiosyncrasy_sd * z);
}

double Module::eff_cpu_static_scale(const PowerProfile& p) const {
  return std::max(0.05, (1.0 + (variation_.cpu_static - 1.0) * p.cpu_sensitivity) *
                            idiosyncrasy(p, 0x1));
}

double Module::eff_cpu_dyn_scale(const PowerProfile& p) const {
  return std::max(0.05, (1.0 + (variation_.cpu_dyn - 1.0) * p.cpu_sensitivity) *
                            idiosyncrasy(p, 0x1));
}

double Module::eff_dram_scale(const PowerProfile& p) const {
  return std::max(0.05, (1.0 + (variation_.dram - 1.0) * p.dram_sensitivity) *
                            idiosyncrasy(p, 0x2));
}

double Module::cpu_power_w(const PowerProfile& profile, double f_ghz) const {
  // The class multipliers and the entropy factor are exactly 1.0 on the
  // default CPU path, so appending them keeps every legacy value
  // bit-identical (x * 1.0 is exact in IEEE-754).
  return eff_cpu_static_scale(profile) * profile.cpu_static_w *
             class_power_.static_mult +
         eff_cpu_dyn_scale(profile) * profile.cpu_dyn_w_per_ghz * f_ghz *
             class_power_.dyn_mult * entropy_factor(profile.data_entropy);
}

double Module::dram_power_w(const PowerProfile& profile, double f_ghz) const {
  return eff_dram_scale(profile) *
         (profile.dram_static_w + profile.dram_dyn_w_per_ghz * f_ghz) *
         class_power_.dram_mult;
}

double Module::module_power_w(const PowerProfile& profile, double f_ghz) const {
  return cpu_power_w(profile, f_ghz) + dram_power_w(profile, f_ghz);
}

double Module::freq_for_cpu_power(const PowerProfile& profile,
                                  double cap_w) const {
  double slope = eff_cpu_dyn_scale(profile) * profile.cpu_dyn_w_per_ghz *
                 class_power_.dyn_mult * entropy_factor(profile.data_entropy);
  if (slope <= 0.0) {
    throw InvalidArgument("freq_for_cpu_power: workload '" + profile.name +
                          "' has non-positive dynamic power slope");
  }
  double intercept = eff_cpu_static_scale(profile) * profile.cpu_static_w *
                     class_power_.static_mult;
  return (cap_w - intercept) / slope;
}

}  // namespace vapb::hw
