#include "hw/rapl.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vapb::hw {

Rapl::Rapl(const Module& module, RaplConfig config)
    : module_(module), config_(config) {
  if (config_.window_s <= 0.0) throw ConfigError("Rapl: window must be > 0");
  if (config_.cliff_exponent < 1.0) {
    throw ConfigError("Rapl: cliff exponent must be >= 1");
  }
  if (config_.min_duty <= 0.0 || config_.min_duty > 1.0) {
    throw ConfigError("Rapl: min_duty must be in (0, 1]");
  }
}

void Rapl::set_cpu_limit(util::Watts cap) {
  if (cap <= util::Watts{0.0}) {
    throw InvalidArgument("Rapl: cap must be positive");
  }
  cpu_limit_ = cap;
}

void Rapl::clear_cpu_limit() { cpu_limit_.reset(); }

OperatingPoint Rapl::operating_point(const PowerProfile& profile,
                                     bool turbo_enabled) const {
  const FrequencyLadder& ladder = module_.ladder();
  const double fmin = ladder.fmin();
  const double fceil = module_.max_freq_ghz(turbo_enabled);

  OperatingPoint op;
  if (!cpu_limit_) {
    // Unconstrained: run as fast as TDP headroom allows (this is how turbo
    // works — opportunistic frequency under the package power envelope).
    double f_at_tdp = module_.freq_for_cpu_power(profile, module_.tdp_cpu_w());
    op.freq_ghz = std::clamp(f_at_tdp, fmin, fceil);
    op.perf_freq_ghz = op.freq_ghz;
  } else {
    const double cap = cpu_limit_->value();
    const double p_at_fmin = module_.cpu_power_w(profile, fmin);
    if (cap < p_at_fmin) {
      // Duty-cycle regime: even the lowest P-state exceeds the cap.
      op.freq_ghz = fmin;
      op.duty = std::max(config_.min_duty, cap / p_at_fmin);
      op.throttled = true;
      op.perf_freq_ghz = fmin *
                         std::pow(op.duty, config_.cliff_exponent) *
                         config_.cliff_overhead;
      // Keep a tiny floor so downstream time models stay finite.
      op.perf_freq_ghz = std::max(op.perf_freq_ghz, fmin * 1e-3);
    } else {
      double f = module_.freq_for_cpu_power(profile, cap);
      bool binding = f < fceil;
      op.freq_ghz = std::clamp(f, fmin, fceil);
      op.perf_freq_ghz =
          binding ? op.freq_ghz * (1.0 - config_.control_perf_penalty)
                  : op.freq_ghz;
    }
  }

  // Sustained powers. In the duty-cycle regime the CPU averages exactly the
  // cap; DRAM activity scales with duty (its static floor remains).
  if (op.throttled) {
    op.cpu_w = cpu_limit_->value();
    op.dram_w = module_.eff_dram_scale(profile) *
                (profile.dram_static_w +
                 profile.dram_dyn_w_per_ghz * op.freq_ghz * op.duty);
  } else {
    op.cpu_w = module_.cpu_power_w(profile, op.freq_ghz);
    op.dram_w = module_.dram_power_w(profile, op.freq_ghz);
  }
  return op;
}

void Rapl::advance(const OperatingPoint& op, double dt_s) {
  if (dt_s < 0.0) throw InvalidArgument("Rapl: negative duration");
  pkg_energy_j_ += op.cpu_w * dt_s;
  dram_energy_j_ += op.dram_w * dt_s;
}

namespace {
std::uint32_t wrap_counter(double energy_j, double unit) {
  double units = energy_j / unit;
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(units) & 0xffffffffULL);
}
}  // namespace

std::uint32_t Rapl::pkg_energy_raw() const {
  return wrap_counter(pkg_energy_j_, config_.energy_unit_j);
}

std::uint32_t Rapl::dram_energy_raw() const {
  return wrap_counter(dram_energy_j_, config_.energy_unit_j);
}

}  // namespace vapb::hw
