#include "hw/ladder.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vapb::hw {

FrequencyLadder::FrequencyLadder(double fmin_ghz, double fmax_ghz,
                                 double step_ghz, double turbo_ghz)
    : fmin_(fmin_ghz), fmax_(fmax_ghz), step_(step_ghz), turbo_(turbo_ghz) {
  if (!(fmin_ > 0.0) || !(fmax_ >= fmin_) || !(step_ > 0.0)) {
    throw ConfigError("FrequencyLadder: need 0 < fmin <= fmax and step > 0");
  }
  if (turbo_ != 0.0 && turbo_ < fmax_) {
    throw ConfigError("FrequencyLadder: turbo must be 0 or >= fmax");
  }
  for (double f = fmin_; f < fmax_ - 1e-9; f += step_) levels_.push_back(f);
  levels_.push_back(fmax_);
}

double FrequencyLadder::quantize_down(double f_ghz) const {
  if (f_ghz <= levels_.front()) return levels_.front();
  // Last level <= f.
  auto it = std::upper_bound(levels_.begin(), levels_.end(), f_ghz + 1e-9);
  return *(it - 1);
}

double FrequencyLadder::clamp(double f_ghz) const {
  return std::min(fmax_, std::max(fmin_, f_ghz));
}

bool FrequencyLadder::is_level(double f_ghz) const {
  return std::any_of(levels_.begin(), levels_.end(),
                     [&](double l) { return std::abs(l - f_ghz) < 1e-6; });
}

}  // namespace vapb::hw
