// Time-series recording of a module's operating point under RAPL control —
// what Figure 2(ii)'s x-axis averages ("the average CPU frequency for a
// module across all RAPL time steps during the application's execution").
//
// RAPL holds the *windowed average* power at the cap while the instantaneous
// clock hunts around the sustained point; the trace exposes both.
#pragma once

#include <vector>

#include "hw/rapl.hpp"
#include "util/rng.hpp"

namespace vapb::hw {

struct TraceSample {
  double t_s = 0.0;
  double freq_ghz = 0.0;  ///< instantaneous clock in this control window
  double cpu_w = 0.0;     ///< average CPU power over the window
  double dram_w = 0.0;
};

class PowerTrace {
 public:
  /// Records `duration_s` of execution of `profile` on `rapl`'s module at
  /// one sample per RAPL window. The instantaneous frequency dithers with
  /// the configured control jitter while the *windowed average* CPU power
  /// stays pinned to the cap (when binding). Also advances the RAPL energy
  /// counters. Throws InvalidArgument for non-positive duration.
  static PowerTrace record(Rapl& rapl, const Module& module,
                           const PowerProfile& profile, double duration_s,
                           util::SeedSequence seed);

  [[nodiscard]] const std::vector<TraceSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] double avg_freq_ghz() const;
  [[nodiscard]] double avg_cpu_w() const;
  [[nodiscard]] double avg_dram_w() const;

 private:
  std::vector<TraceSample> samples_;
};

}  // namespace vapb::hw
