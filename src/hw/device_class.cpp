#include "hw/device_class.hpp"

#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vapb::hw {

namespace {

const std::vector<std::string>& class_names() {
  static const std::vector<std::string> kNames = {"cpu", "gpu", "dram"};
  return kNames;
}

}  // namespace

std::string device_class_name(DeviceClass c) {
  const std::size_t i = device_class_index(c);
  if (i >= kDeviceClassCount) {
    throw InvalidArgument("device_class_name: invalid class value " +
                          std::to_string(i));
  }
  return class_names()[i];
}

DeviceClass device_class_by_name(const std::string& name) {
  const std::vector<std::string>& names = class_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (name == names[i]) return static_cast<DeviceClass>(i);
  }
  std::string msg = "unknown device class '" + name + "'";
  const std::string near = util::nearest_name(name, names);
  if (!near.empty()) msg += " (did you mean '" + near + "'?)";
  msg += "; valid classes: " + util::join(names, ", ");
  throw InvalidArgument(msg);
}

const std::array<DeviceClass, kDeviceClassCount>& all_device_classes() {
  static const std::array<DeviceClass, kDeviceClassCount> kAll = {
      DeviceClass::kCpu, DeviceClass::kGpu, DeviceClass::kDram};
  return kAll;
}

std::size_t ClassMix::total() const {
  std::size_t n = 0;
  for (std::size_t c : counts) n += c;
  return n;
}

bool ClassMix::homogeneous_cpu() const {
  for (std::size_t i = 1; i < kDeviceClassCount; ++i) {
    if (counts[i] != 0) return false;
  }
  return true;
}

std::string ClassMix::str() const {
  std::string out;
  for (std::size_t i = 0; i < kDeviceClassCount; ++i) {
    if (counts[i] == 0) continue;
    if (!out.empty()) out += ',';
    out += class_names()[i] + ":" + std::to_string(counts[i]);
  }
  return out;
}

ClassMix ClassMix::parse(const std::string& spec) {
  ClassMix mix;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = util::trim(spec.substr(pos, comma - pos));
    pos = comma + 1;
    if (part.empty()) continue;
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos) {
      throw InvalidArgument("ClassMix: expected class:count, got '" + part +
                            "'");
    }
    const DeviceClass c =
        device_class_by_name(util::trim(part.substr(0, colon)));
    const std::string count_text = util::trim(part.substr(colon + 1));
    char* end = nullptr;
    const unsigned long long count =
        std::strtoull(count_text.c_str(), &end, 10);
    if (end == count_text.c_str() || (end != nullptr && *end != '\0')) {
      throw InvalidArgument("ClassMix: bad count '" + count_text + "' for '" +
                            device_class_name(c) + "'");
    }
    std::size_t& slot = mix.counts[device_class_index(c)];
    if (slot != 0) {
      throw InvalidArgument("ClassMix: class '" + device_class_name(c) +
                            "' given twice");
    }
    slot = static_cast<std::size_t>(count);
  }
  return mix;
}

ClassMix ClassMix::cpu_only(std::size_t n) {
  ClassMix mix;
  mix.counts[device_class_index(DeviceClass::kCpu)] = n;
  return mix;
}

}  // namespace vapb::hw
