// cpufrequtils-style userspace frequency governor.
//
// The paper's Frequency Selection (FS) back-end: a static frequency is
// applied per module; power consumption becomes a consequence rather than a
// constraint. FS guarantees consistent performance but can exceed a derived
// power cap (Section 5.3).
#pragma once

#include <optional>

#include "hw/module.hpp"
#include "hw/power_profile.hpp"
#include "hw/rapl.hpp"
#include "util/units.hpp"

namespace vapb::hw {

class CpufreqGovernor {
 public:
  explicit CpufreqGovernor(const Module& module) : module_(module) {}

  /// Requests a target frequency; the governor snaps it down to the nearest
  /// selectable P-state (cpufrequtils semantics). Throws InvalidArgument for
  /// non-positive targets.
  void set_frequency(util::GigaHertz f);

  /// Reverts to the ondemand-style default (highest frequency).
  void clear();

  /// The P-state currently programmed, if any.
  [[nodiscard]] std::optional<util::GigaHertz> frequency_ghz() const {
    return set_freq_;
  }

  /// Operating point under FS: the programmed frequency (or fmax), with power
  /// as the uncapped consequence. Never throttles.
  [[nodiscard]] OperatingPoint operating_point(const PowerProfile& profile) const;

 private:
  const Module& module_;
  std::optional<util::GigaHertz> set_freq_;
};

}  // namespace vapb::hw
