// A module: one processor socket plus its DRAM — the paper's unit of power
// measurement and control. Holds the ground-truth power behaviour of this
// particular piece of silicon.
#pragma once

#include <cstdint>

#include "hw/device_class.hpp"
#include "hw/ladder.hpp"
#include "hw/power_profile.hpp"
#include "hw/variation.hpp"
#include "util/rng.hpp"

namespace vapb::hw {

using ModuleId = std::uint32_t;

class Module {
 public:
  /// `fab_seed` is the architecture-level fabrication seed; the module's
  /// idiosyncratic per-workload behaviour is derived from it deterministically.
  /// The optional class parameters default to a CPU module with the exact
  /// identity power model, which leaves every legacy power value
  /// bit-identical (all the class multipliers are IEEE-754 1.0).
  Module(ModuleId id, ModuleVariation variation, FrequencyLadder ladder,
         double tdp_cpu_w, util::SeedSequence fab_seed,
         DeviceClass device_class = DeviceClass::kCpu,
         ClassPowerModel class_power = {});

  [[nodiscard]] ModuleId id() const { return id_; }
  [[nodiscard]] const ModuleVariation& variation() const { return variation_; }
  [[nodiscard]] const FrequencyLadder& ladder() const { return ladder_; }
  [[nodiscard]] double tdp_cpu_w() const { return tdp_cpu_w_; }
  [[nodiscard]] DeviceClass device_class() const { return device_class_; }
  [[nodiscard]] const ClassPowerModel& class_power() const {
    return class_power_;
  }

  /// Highest frequency this part can reach: ladder fmax (or turbo) times the
  /// module's frequency-capability scale.
  [[nodiscard]] double max_freq_ghz(bool turbo = false) const;

  // -- Ground-truth power ----------------------------------------------------
  // These are what a perfect external power meter would read while `profile`
  // runs at frequency `f_ghz` with full duty. They fold the module's
  // variation scales through the workload's sensitivity plus the workload's
  // idiosyncratic per-module factor.

  [[nodiscard]] double cpu_power_w(const PowerProfile& profile,
                                   double f_ghz) const;
  [[nodiscard]] double dram_power_w(const PowerProfile& profile,
                                    double f_ghz) const;
  [[nodiscard]] double module_power_w(const PowerProfile& profile,
                                      double f_ghz) const;

  /// Continuous frequency at which cpu_power_w(profile, f) == cap_w.
  /// Unclamped: may be below fmin (throttling territory) or above fmax
  /// (cap not binding). Throws InvalidArgument when the workload has a
  /// non-positive dynamic-power slope.
  [[nodiscard]] double freq_for_cpu_power(const PowerProfile& profile,
                                          double cap_w) const;

  /// Effective multiplicative scales as seen by this workload.
  [[nodiscard]] double eff_cpu_static_scale(const PowerProfile& p) const;
  [[nodiscard]] double eff_cpu_dyn_scale(const PowerProfile& p) const;
  [[nodiscard]] double eff_dram_scale(const PowerProfile& p) const;

  /// This class's dynamic-power modulation for input entropy `e`:
  /// 1 + entropy_slope * (e - 0.5). Exactly 1.0 at e = 0.5 or slope 0.
  [[nodiscard]] double entropy_factor(double entropy) const {
    return 1.0 + class_power_.entropy_slope * (entropy - 0.5);
  }

 private:
  /// Idiosyncratic per-(module, workload) factor; deterministic in
  /// (fab seed, module id, workload name). Mean 1, sd = p.idiosyncrasy_sd.
  [[nodiscard]] double idiosyncrasy(const PowerProfile& p,
                                    std::uint64_t salt) const;

  ModuleId id_;
  ModuleVariation variation_;
  FrequencyLadder ladder_;
  double tdp_cpu_w_;
  util::SeedSequence fab_seed_;
  DeviceClass device_class_;
  ClassPowerModel class_power_;
};

}  // namespace vapb::hw
