#include "hw/arch_io.hpp"

#include "util/error.hpp"

namespace vapb::hw {

namespace {

SensorKind sensor_from_name(const std::string& name) {
  if (name == "rapl") return SensorKind::kRapl;
  if (name == "powerinsight") return SensorKind::kPowerInsight;
  if (name == "emon") return SensorKind::kBgqEmon;
  throw InvalidArgument("unknown measurement technique '" + name +
                        "' (rapl|powerinsight|emon)");
}

/// Reads a (sd, lo, hi) triple with the given key prefix; all-or-nothing.
void read_band(const util::Config& cfg, const std::string& prefix, double& sd,
               double& lo, double& hi) {
  if (!cfg.has("variation", prefix + "_sd")) return;
  sd = cfg.get_double("variation", prefix + "_sd");
  lo = cfg.get_double("variation", prefix + "_lo");
  hi = cfg.get_double("variation", prefix + "_hi");
  if (!(lo < hi)) {
    throw ConfigError("variation " + prefix + ": need lo < hi");
  }
}

}  // namespace

ArchSpec arch_from_config(const util::Config& cfg) {
  ArchSpec a;
  a.system = cfg.get("system", "name");
  a.microarch = cfg.get_or("system", "microarch", "custom");
  a.total_nodes = static_cast<int>(cfg.get_long("system", "nodes"));
  a.procs_per_node =
      static_cast<int>(cfg.get_long_or("system", "procs_per_node", 1));
  a.cores_per_proc =
      static_cast<int>(cfg.get_long_or("system", "cores_per_proc", 1));
  a.memory_per_node_gb =
      static_cast<int>(cfg.get_long_or("system", "memory_per_node_gb", 0));
  a.tdp_cpu_w = cfg.get_double("system", "tdp_cpu_w");
  a.tdp_dram_w = cfg.get_double_or("system", "tdp_dram_w", 0.0);
  a.measurement =
      sensor_from_name(cfg.get_or("system", "measurement", "rapl"));
  a.supports_power_capping =
      cfg.get_or("system", "power_capping", "true") == "true";
  a.dram_measurement_available =
      cfg.get_or("system", "dram_measurement", "true") == "true";

  double fmin = cfg.get_double("ladder", "fmin_ghz");
  double fmax = cfg.get_double("ladder", "fmax_ghz");
  double step = cfg.get_double_or("ladder", "step_ghz", 0.1);
  double turbo = cfg.get_double_or("ladder", "turbo_ghz", 0.0);
  a.ladder = FrequencyLadder(fmin, fmax, step, turbo);
  a.nominal_freq_ghz = fmax;

  if (cfg.has_section("variation")) {
    auto& v = a.variation;
    read_band(cfg, "cpu_dyn", v.cpu_dyn_sd, v.cpu_dyn_lo, v.cpu_dyn_hi);
    read_band(cfg, "cpu_static", v.cpu_static_sd, v.cpu_static_lo,
              v.cpu_static_hi);
    read_band(cfg, "dram", v.dram_sd, v.dram_lo, v.dram_hi);
    read_band(cfg, "freq", v.freq_sd, v.freq_lo, v.freq_hi);
    v.cpu_dyn_static_corr =
        cfg.get_double_or("variation", "cpu_dyn_static_corr", 0.7);
    v.freq_power_corr =
        cfg.get_double_or("variation", "freq_power_corr", 0.0);
  }

  if (a.total_nodes <= 0) throw ConfigError("system nodes must be positive");
  if (a.tdp_cpu_w <= 0.0) throw ConfigError("tdp_cpu_w must be positive");
  return a;
}

ArchSpec arch_from_config_text(const std::string& text) {
  return arch_from_config(util::Config::parse(text));
}

}  // namespace vapb::hw
