// Device classes — the generalization of the paper's implicit "module ==
// CPU socket" assumption to heterogeneous fleets.
//
// A DeviceClass names what kind of silicon a module is: a CPU socket (the
// paper's HA8K evaluation hardware), a GPU accelerator (Sinha et al., "Not
// All GPUs Are Created Equal", measure GPU-to-GPU manufacturing spread as
// large or larger than CPU spread), or a DRAM expansion module. Each class
// carries its own variation distribution, frequency range, TDP and power
// model, so calibration and the budget solves can treat a mixed fleet as
// per-class affine tables instead of one global one.
//
// ClassPowerModel also carries the input-entropy response (Bhalachandra et
// al.): the dynamic power term scales by 1 + entropy_slope * (e - 0.5),
// which is *exactly* 1.0 at the default entropy of 0.5 — the all-CPU
// degenerate path stays bit-identical by IEEE-754 multiplication by 1.0.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/ladder.hpp"
#include "hw/variation.hpp"

namespace vapb::hw {

enum class DeviceClass : std::uint8_t {
  kCpu = 0,
  kGpu = 1,
  kDram = 2,
};

inline constexpr std::size_t kDeviceClassCount = 3;

/// Index form for per-class arrays (std::array<T, kDeviceClassCount>).
[[nodiscard]] constexpr std::size_t device_class_index(DeviceClass c) {
  return static_cast<std::size_t>(c);
}

/// Canonical short name: "cpu", "gpu", "dram".
[[nodiscard]] std::string device_class_name(DeviceClass c);

/// Reverse lookup. Unknown names throw InvalidArgument with a did-you-mean
/// suggestion (same convention as the other CLI vocabularies).
[[nodiscard]] DeviceClass device_class_by_name(const std::string& name);

/// All classes in index order {kCpu, kGpu, kDram}.
[[nodiscard]] const std::array<DeviceClass, kDeviceClassCount>&
all_device_classes();

/// How one device class expresses a workload's power curve. The multipliers
/// apply on top of the workload's affine coefficients; every field defaults
/// to the exact identity so a default-constructed model leaves the legacy
/// CPU path bit-identical.
struct ClassPowerModel {
  double static_mult = 1.0;  ///< on the static (leakage) device term
  double dyn_mult = 1.0;     ///< on the dynamic (switching) device term
  double dram_mult = 1.0;    ///< on the attached-memory term
  /// Input-entropy response of the dynamic term:
  /// factor = 1 + entropy_slope * (entropy - 0.5). Exactly 1 at e = 0.5.
  double entropy_slope = 0.0;
};

/// Fabrication parameters of one device class within an architecture.
struct DeviceClassSpec {
  DeviceClass device_class = DeviceClass::kCpu;
  VariationDistribution variation;
  FrequencyLadder ladder{1.0, 1.0, 0.1};
  double tdp_w = 0.0;  ///< nameplate device power cap per module
  ClassPowerModel power;
};

/// A heterogeneous fleet composition, e.g. "cpu:1536,gpu:320,dram:64".
struct ClassMix {
  std::array<std::size_t, kDeviceClassCount> counts{};

  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] std::size_t count(DeviceClass c) const {
    return counts[device_class_index(c)];
  }

  /// True for an empty mix or one with only CPU modules — the degenerate
  /// case every legacy code path handles.
  [[nodiscard]] bool homogeneous_cpu() const;

  /// Canonical spec string ("cpu:1536,gpu:320,dram:64"; zero-count classes
  /// omitted, index order). parse(str()) round-trips.
  [[nodiscard]] std::string str() const;

  /// Parses "class:count[,class:count...]". Unknown class names throw
  /// InvalidArgument with a did-you-mean suggestion; repeated classes and
  /// non-numeric counts throw too. An empty spec is an empty mix.
  static ClassMix parse(const std::string& spec);

  static ClassMix cpu_only(std::size_t n);
};

}  // namespace vapb::hw
