// Loading custom ArchSpecs from configuration files — lets vapbctl model a
// system that is not one of the Table-2 presets.
//
// Format (INI; unset keys take the preset-style defaults noted below):
//
//   [system]
//   name = MySystem
//   microarch = Some CPU
//   nodes = 100
//   procs_per_node = 2        ; default 1
//   cores_per_proc = 8        ; default 1
//   memory_per_node_gb = 64   ; default 0
//   tdp_cpu_w = 120
//   tdp_dram_w = 50           ; default 0
//   measurement = rapl        ; rapl | powerinsight | emon (default rapl)
//   power_capping = true      ; default true
//
//   [ladder]
//   fmin_ghz = 1.2
//   fmax_ghz = 2.6
//   step_ghz = 0.1            ; default 0.1
//   turbo_ghz = 3.0           ; default 0 (none)
//
//   [variation]
//   cpu_dyn_sd = 0.04         ; with cpu_dyn_lo / cpu_dyn_hi bounds
//   ...                       ; cpu_static_*, dram_*, freq_* analogous
//   cpu_dyn_static_corr = 0.7
//   freq_power_corr = 0.0
#pragma once

#include <string>

#include "hw/arch.hpp"
#include "util/config.hpp"

namespace vapb::hw {

/// Builds an ArchSpec from a parsed config. Throws InvalidArgument /
/// ConfigError on missing required keys or inconsistent values.
ArchSpec arch_from_config(const util::Config& config);

/// Convenience: parse text then build.
ArchSpec arch_from_config_text(const std::string& text);

}  // namespace vapb::hw
