// RAPL (Running Average Power Limit) emulation.
//
// Mirrors the Intel interface the paper controls power with (Section 3.1.1):
// an MSR-style power-limit register per domain (PKG a.k.a. CPU, and DRAM),
// energy counters with RAPL's 15.3 uJ unit and 32-bit wraparound, and
// hardware enforcement that holds *average* power over the configured time
// window at or below the cap by scaling frequency (and, below the lowest
// P-state, by duty-cycle throttling — the regime responsible for the paper's
// "rapid degradation when CPU power goes below ~40 W").
#pragma once

#include <cstdint>
#include <optional>

#include "hw/module.hpp"
#include "hw/power_profile.hpp"
#include "util/units.hpp"

namespace vapb::hw {

/// RAPL behaviour knobs; defaults model the paper's HA8K configuration.
struct RaplConfig {
  /// Averaging window for cap enforcement [s] (paper: 1 ms).
  double window_s = 1e-3;

  /// RAPL's cap-to-frequency control is dynamic (it hunts around the target
  /// operating point); the runner applies a zero-mean frequency dither with
  /// this sd [GHz] per control interval when a cap is active. The paper uses
  /// this behaviour to explain why frequency selection (VaFs) beats power
  /// capping (VaPc).
  double control_jitter_sd_ghz = 0.03;

  /// Below P(fmin), enforcement falls back to duty-cycle (T-state) clock
  /// modulation: perf-equivalent frequency
  ///   = fmin * duty^cliff_exponent * cliff_overhead.
  /// The exponent models the super-linear collapse (pipeline drains, uncore
  /// stalls, modulation overhead) behind the paper's "rapid degradation in
  /// performance when CPU power goes below ~40 W"; it is continuous at
  /// duty = 1 so a barely-binding cap degrades gracefully. Fitted so that a
  /// ~20% power shortfall at fmin costs ~4x performance, reproducing the
  /// magnitude of the paper's worst Naive slowdowns.
  double cliff_exponent = 7.0;
  double cliff_overhead = 1.0;

  /// Duty cycle never drops below this (hardware keeps a minimal heartbeat).
  double min_duty = 0.05;

  /// RAPL's windowed controller hunts around the target operating point;
  /// relative performance lost versus running statically at the same average
  /// power (the reason frequency selection beats power capping in Section 6).
  /// Applied while a cap is binding (not throttled, not at fmax).
  double control_perf_penalty = 0.03;

  /// RAPL energy counter unit [J] (Intel SDM: 15.3 uJ).
  double energy_unit_j = 15.3e-6;
};

/// Where a module settles while running a workload: the sustained frequency,
/// the duty cycle (1 unless throttled below fmin), and the resulting powers.
struct OperatingPoint {
  double freq_ghz = 0.0;       ///< electrical clock while running
  double duty = 1.0;           ///< fraction of time un-gated
  bool throttled = false;      ///< true when cap < P(fmin): duty-cycle regime
  double cpu_w = 0.0;          ///< sustained average CPU power
  double dram_w = 0.0;         ///< sustained average DRAM power

  /// Performance-equivalent frequency: what the workload's compute rate
  /// corresponds to. Equals freq_ghz when not throttled; collapses
  /// super-linearly with duty when throttled.
  double perf_freq_ghz = 0.0;

  [[nodiscard]] double module_w() const { return cpu_w + dram_w; }
};

/// Per-module RAPL instance: power-limit register + energy counters.
class Rapl {
 public:
  Rapl(const Module& module, RaplConfig config = {});

  /// Programs the PKG power limit. Throws InvalidArgument for
  /// non-positive caps.
  void set_cpu_limit(util::Watts cap);

  /// Clears the PKG power limit (power constrained only by TDP logic).
  void clear_cpu_limit();

  [[nodiscard]] std::optional<util::Watts> cpu_limit_w() const {
    return cpu_limit_;
  }
  [[nodiscard]] const RaplConfig& config() const { return config_; }

  /// Resolves the sustained operating point for `profile`:
  ///  * no cap: highest reachable frequency, bounded by TDP headroom
  ///    (turbo opportunistically exceeds fmax when headroom allows);
  ///  * cap >= P(fmin): frequency scaled so average CPU power == cap
  ///    (or the cap is simply not binding);
  ///  * cap <  P(fmin): duty-cycle throttling regime.
  [[nodiscard]] OperatingPoint operating_point(const PowerProfile& profile,
                                               bool turbo_enabled = false) const;

  /// Integrates `op` for `dt_s` seconds into the PKG/DRAM energy counters.
  void advance(const OperatingPoint& op, double dt_s);

  /// Raw 32-bit wrapping counters in RAPL energy units, as the MSR exposes.
  [[nodiscard]] std::uint32_t pkg_energy_raw() const;
  [[nodiscard]] std::uint32_t dram_energy_raw() const;

  /// Total accumulated energy [J] (non-wrapping convenience view).
  [[nodiscard]] double pkg_energy_j() const { return pkg_energy_j_; }
  [[nodiscard]] double dram_energy_j() const { return dram_energy_j_; }

 private:
  const Module& module_;
  RaplConfig config_;
  std::optional<util::Watts> cpu_limit_;
  double pkg_energy_j_ = 0.0;
  double dram_energy_j_ = 0.0;
};

}  // namespace vapb::hw
