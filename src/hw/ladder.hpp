// Discrete CPU frequency ladder (P-states) with optional turbo headroom.
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace vapb::hw {

/// The set of frequencies a processor can be asked to run at. Frequencies are
/// `fmin + k*step` for k = 0..K with `fmax` included exactly; `turbo` (when
/// > fmax) is an additional opportunistic state that cannot be requested via
/// the governor — it is entered only when power-unconstrained.
class FrequencyLadder {
 public:
  /// Throws ConfigError unless 0 < fmin <= fmax, step > 0, and
  /// turbo == 0 or turbo >= fmax. turbo == 0 means "no turbo".
  FrequencyLadder(double fmin_ghz, double fmax_ghz, double step_ghz,
                  double turbo_ghz = 0.0);

  [[nodiscard]] double fmin() const { return fmin_; }
  [[nodiscard]] double fmax() const { return fmax_; }

  /// Typed views of the endpoints for the budgeting layer (util/units.hpp).
  [[nodiscard]] util::GigaHertz fmin_freq() const {
    return util::GigaHertz{fmin_};
  }
  [[nodiscard]] util::GigaHertz fmax_freq() const {
    return util::GigaHertz{fmax_};
  }
  [[nodiscard]] double step() const { return step_; }
  [[nodiscard]] bool has_turbo() const { return turbo_ > 0.0; }
  /// Turbo frequency; equals fmax when the part has no turbo.
  [[nodiscard]] double turbo() const { return has_turbo() ? turbo_ : fmax_; }

  /// All selectable frequencies, ascending (turbo excluded).
  [[nodiscard]] const std::vector<double>& levels() const { return levels_; }

  /// Largest selectable frequency <= f; returns fmin when f < fmin.
  [[nodiscard]] double quantize_down(double f_ghz) const;

  /// Clamps a continuous frequency into [fmin, fmax].
  [[nodiscard]] double clamp(double f_ghz) const;

  /// True if f is (within tolerance) one of the selectable levels.
  [[nodiscard]] bool is_level(double f_ghz) const;

 private:
  double fmin_, fmax_, step_, turbo_;
  std::vector<double> levels_;
};

}  // namespace vapb::hw
