#include "hw/arch.hpp"

#include "util/error.hpp"

namespace vapb::hw {

ArchSpec cab() {
  ArchSpec a;
  a.system = "Cab (LLNL)";
  a.microarch = "Intel E5-2670 Sandy Bridge";
  a.total_nodes = 1296;
  a.procs_per_node = 2;
  a.cores_per_proc = 8;
  a.nominal_freq_ghz = 2.6;
  a.memory_per_node_gb = 32;
  a.tdp_cpu_w = 115.0;
  a.tdp_dram_w = 0.0;  // DRAM readings unavailable (BIOS restriction)
  a.measurement = SensorKind::kRapl;
  a.supports_power_capping = true;  // RAPL present (caps not enforced in study)
  a.dram_measurement_available = false;
  a.ladder = FrequencyLadder(1.2, 2.6, 0.1, 3.3);
  // ~23% max CPU power spread over 2,386 sockets; strict frequency binning.
  a.variation.cpu_dyn_sd = 0.036;
  a.variation.cpu_dyn_lo = 0.91;
  a.variation.cpu_dyn_hi = 1.10;
  a.variation.cpu_static_sd = 0.05;
  a.variation.cpu_static_lo = 0.87;
  a.variation.cpu_static_hi = 1.15;
  a.variation.dram_sd = 0.10;
  a.variation.dram_lo = 0.65;
  a.variation.dram_hi = 1.40;
  return a;
}

ArchSpec vulcan() {
  ArchSpec a;
  a.system = "BG/Q Vulcan (LLNL)";
  a.microarch = "IBM PowerPC A2";
  // 24,576 compute nodes; power is observed per node board (32 nodes), so a
  // "module" is a node board: 768 boards.
  a.total_nodes = 768;
  a.procs_per_node = 1;
  a.cores_per_proc = 16;
  a.nominal_freq_ghz = 1.6;
  a.memory_per_node_gb = 16;
  a.tdp_cpu_w = 2000.0;  // per node board; rack max 100 kW, 32 boards/rack
  a.tdp_dram_w = 0.0;
  a.measurement = SensorKind::kBgqEmon;
  a.supports_power_capping = false;
  a.dram_measurement_available = true;
  a.module_granularity = "node board";
  a.ladder = FrequencyLadder(1.6, 1.6, 0.1);  // fixed-frequency A2
  // ~11% spread across node boards; no frequency variation.
  a.variation.cpu_dyn_sd = 0.019;
  a.variation.cpu_dyn_lo = 0.952;
  a.variation.cpu_dyn_hi = 1.052;
  a.variation.cpu_static_sd = 0.025;
  a.variation.cpu_static_lo = 0.93;
  a.variation.cpu_static_hi = 1.07;
  a.variation.dram_sd = 0.06;
  a.variation.dram_lo = 0.80;
  a.variation.dram_hi = 1.22;
  return a;
}

ArchSpec teller() {
  ArchSpec a;
  a.system = "Teller (SNL)";
  a.microarch = "AMD A10-5800K Piledriver";
  a.total_nodes = 104;
  a.procs_per_node = 1;
  a.cores_per_proc = 4;
  a.nominal_freq_ghz = 3.8;
  a.memory_per_node_gb = 16;
  a.tdp_cpu_w = 100.0;
  a.tdp_dram_w = 0.0;
  a.measurement = SensorKind::kPowerInsight;
  a.supports_power_capping = false;
  a.dram_measurement_available = true;
  a.ladder = FrequencyLadder(1.4, 3.8, 0.2, 4.2);
  // ~21% power spread AND ~17% performance spread over 64 sockets;
  // more power <-> faster part (Turbo Core pushing harder on leakier dies).
  a.variation.cpu_dyn_sd = 0.042;
  a.variation.cpu_dyn_lo = 0.90;
  a.variation.cpu_dyn_hi = 1.11;
  a.variation.cpu_static_sd = 0.05;
  a.variation.cpu_static_lo = 0.87;
  a.variation.cpu_static_hi = 1.14;
  a.variation.dram_sd = 0.08;
  a.variation.dram_lo = 0.75;
  a.variation.dram_hi = 1.28;
  a.variation.freq_sd = 0.052;
  a.variation.freq_lo = 0.845;
  a.variation.freq_hi = 1.02;
  a.variation.freq_power_corr = 0.6;
  return a;
}

ArchSpec ha8k() {
  ArchSpec a;
  a.system = "HA8K (Kyushu Univ.)";
  a.microarch = "Intel E5-2697v2 Ivy Bridge";
  a.total_nodes = 960;
  a.procs_per_node = 2;
  a.cores_per_proc = 12;
  a.nominal_freq_ghz = 2.7;
  a.memory_per_node_gb = 256;
  a.tdp_cpu_w = 130.0;
  a.tdp_dram_w = 62.0;
  a.measurement = SensorKind::kRapl;
  a.supports_power_capping = true;
  a.dram_measurement_available = true;
  a.ladder = FrequencyLadder(1.2, 2.7, 0.1, 3.0);
  // Calibrated to Figure 2: module Vp ~1.3 uncapped (band 1.2-1.5 across
  // benchmarks), DRAM Vp ~2.8 over 1,920 modules.
  a.variation.cpu_dyn_sd = 0.042;
  a.variation.cpu_dyn_lo = 0.865;
  a.variation.cpu_dyn_hi = 1.155;
  a.variation.cpu_static_sd = 0.06;
  a.variation.cpu_static_lo = 0.82;
  a.variation.cpu_static_hi = 1.19;
  a.variation.cpu_dyn_static_corr = 0.7;
  a.variation.dram_sd = 0.17;
  a.variation.dram_lo = 0.40;
  a.variation.dram_hi = 1.55;
  return a;
}

std::vector<ArchSpec> all_archs() { return {cab(), vulcan(), teller(), ha8k()}; }

ArchSpec arch_by_name(const std::string& name) {
  if (name == "cab") return cab();
  if (name == "vulcan") return vulcan();
  if (name == "teller") return teller();
  if (name == "ha8k") return ha8k();
  throw InvalidArgument("unknown architecture '" + name +
                        "' (cab|vulcan|teller|ha8k)");
}

std::string arch_short_name(const ArchSpec& spec) {
  for (const char* name : {"cab", "vulcan", "teller", "ha8k"}) {
    if (arch_by_name(name).system == spec.system) return name;
  }
  return "";
}

DeviceClassSpec device_class_spec(const ArchSpec& spec, DeviceClass c) {
  DeviceClassSpec d;
  d.device_class = c;
  switch (c) {
    case DeviceClass::kCpu:
      // The legacy fields verbatim: a CPU-class module is the same silicon
      // the homogeneous constructor fabricates. Only the entropy response
      // is new, and it is exactly 1.0 at the default entropy of 0.5.
      d.variation = spec.variation;
      d.ladder = spec.ladder;
      d.tdp_w = spec.tdp_cpu_w;
      d.power.entropy_slope = 0.22;
      return d;
    case DeviceClass::kGpu:
      // Sinha et al.: GPU-to-GPU power spread up to ~2x the CPU spread,
      // plus a real clock-capability spread (boost binning is loose).
      d.variation = spec.variation;
      d.variation.cpu_dyn_sd = 2.0 * spec.variation.cpu_dyn_sd;
      d.variation.cpu_dyn_lo = 1.0 - 2.0 * (1.0 - spec.variation.cpu_dyn_lo);
      d.variation.cpu_dyn_hi = 1.0 + 2.0 * (spec.variation.cpu_dyn_hi - 1.0);
      d.variation.cpu_static_sd = 1.6 * spec.variation.cpu_static_sd;
      d.variation.cpu_static_lo =
          1.0 - 1.6 * (1.0 - spec.variation.cpu_static_lo);
      d.variation.cpu_static_hi =
          1.0 + 1.6 * (spec.variation.cpu_static_hi - 1.0);
      d.variation.freq_sd = 0.04;
      d.variation.freq_lo = 0.90;
      d.variation.freq_hi = 1.06;
      d.variation.freq_power_corr = 0.5;
      d.ladder = FrequencyLadder(0.6, 1.4, 0.05, 1.6);
      d.tdp_w = 2.3 * spec.tdp_cpu_w;  // accelerator-card class TDP
      d.power.static_mult = 1.8;       // bigger die, more leakage
      d.power.dyn_mult = 5.2;          // W/GHz: wide datapaths
      d.power.dram_mult = 1.4;         // on-card HBM stack
      d.power.entropy_slope = 0.45;    // Bhalachandra: GPUs most sensitive
      return d;
    case DeviceClass::kDram:
      // Memory expansion module: the device channel is the buffer/controller
      // (low, nearly frequency-flat power), the memory channel dominates.
      d.variation = spec.variation;
      d.variation.cpu_dyn_sd = 0.5 * spec.variation.cpu_dyn_sd;
      d.variation.cpu_dyn_lo = 1.0 - 0.5 * (1.0 - spec.variation.cpu_dyn_lo);
      d.variation.cpu_dyn_hi = 1.0 + 0.5 * (spec.variation.cpu_dyn_hi - 1.0);
      d.variation.dram_sd = 1.5 * spec.variation.dram_sd;
      d.variation.dram_lo = 1.0 - 1.25 * (1.0 - spec.variation.dram_lo);
      d.variation.dram_hi = 1.0 + 1.25 * (spec.variation.dram_hi - 1.0);
      d.ladder = FrequencyLadder(0.8, 1.2, 0.2);
      d.tdp_w = 0.25 * spec.tdp_cpu_w;
      d.power.static_mult = 0.22;
      d.power.dyn_mult = 0.12;
      d.power.dram_mult = 3.0;
      d.power.entropy_slope = 0.30;  // bit-flip rate drives DQ power
      return d;
  }
  throw InvalidArgument("device_class_spec: invalid class");
}

}  // namespace vapb::hw
