// Workload power profile: the coefficients of the affine power-vs-frequency
// model the paper validates in Figure 5 (R^2 >= 0.99 for CPU, DRAM and
// module power on HA8K).
//
// For an *average* module, a workload w consumes
//   P_cpu(f)  = cpu_static_w  + cpu_dyn_w_per_ghz  * f
//   P_dram(f) = dram_static_w + dram_dyn_w_per_ghz * f
// Individual modules scale these by their manufacturing-variation scales
// (see hw/variation.hpp), filtered through the workload's sensitivity.
#pragma once

#include <string>

namespace vapb::hw {

struct PowerProfile {
  std::string name;  ///< workload name, for diagnostics

  double cpu_static_w = 0.0;       ///< CPU power intercept [W]
  double cpu_dyn_w_per_ghz = 0.0;  ///< CPU power slope [W/GHz]
  double dram_static_w = 0.0;      ///< DRAM power intercept [W]
  double dram_dyn_w_per_ghz = 0.0; ///< DRAM power slope [W/GHz]

  /// How strongly this workload expresses a module's manufacturing variation
  /// (1 = exactly like the PVT microbenchmark). A workload that keeps
  /// different functional units busy than the microbenchmark sees a slightly
  /// different projection of the same die-level variation.
  double cpu_sensitivity = 1.0;
  double dram_sensitivity = 1.0;

  /// Standard deviation of the per-(module, workload) idiosyncratic power
  /// scale — variation that no single-microbenchmark PVT can predict. This is
  /// what makes NPB-BT's calibration ~10% off in the paper while others stay
  /// under 5%.
  double idiosyncrasy_sd = 0.0;

  /// Entropy of the input data this workload switches through the datapath,
  /// in [0, 1] (Bhalachandra et al.: dynamic power grows with operand bit
  /// activity). A module's class decides how strongly this modulates its
  /// dynamic power term (hw::ClassPowerModel::entropy_slope); at the
  /// default of 0.5 the modulation factor is exactly 1.0, so legacy
  /// profiles are untouched.
  double data_entropy = 0.5;

  /// Average-module CPU power at frequency f [GHz].
  [[nodiscard]] double cpu_w(double f_ghz) const {
    return cpu_static_w + cpu_dyn_w_per_ghz * f_ghz;
  }
  /// Average-module DRAM power at frequency f [GHz].
  [[nodiscard]] double dram_w(double f_ghz) const {
    return dram_static_w + dram_dyn_w_per_ghz * f_ghz;
  }
  /// Average-module total (CPU + DRAM) power at frequency f [GHz].
  [[nodiscard]] double module_w(double f_ghz) const {
    return cpu_w(f_ghz) + dram_w(f_ghz);
  }
};

}  // namespace vapb::hw
