#include "tenancy/trace.hpp"

#include <bit>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <utility>

#include "hw/device_class.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vapb::tenancy {

namespace {

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h + kGamma + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t mix_str(std::uint64_t h, const std::string& s) {
  h = mix(h, static_cast<std::uint64_t>(s.size()));
  for (const char c : s) h = mix(h, static_cast<std::uint64_t>(c));
  return h;
}

// Field tables shared by the JSON parser, the CLI shorthand and the
// serializer so the three can never disagree on spelling. String fields
// must be quoted in JSON, numeric fields must not be.
enum class FieldKind { kUint64, kInt, kDouble, kString };

template <typename T>
struct Field {
  const char* name;
  FieldKind kind;
  void* (*slot)(T&);
};

template <typename T, auto Member>
void* slot_of(T& s) {
  return &(s.*Member);
}

const std::vector<Field<TenancyTrace>>& trace_fields() {
  static const std::vector<Field<TenancyTrace>> kFields = {
      {"seed", FieldKind::kUint64, &slot_of<TenancyTrace, &TenancyTrace::seed>},
      {"budget_cm_w", FieldKind::kDouble,
       &slot_of<TenancyTrace, &TenancyTrace::budget_cm_w>},
      {"placement", FieldKind::kString,
       &slot_of<TenancyTrace, &TenancyTrace::placement>},
      {"partition", FieldKind::kString,
       &slot_of<TenancyTrace, &TenancyTrace::partition>},
      {"scheme", FieldKind::kString,
       &slot_of<TenancyTrace, &TenancyTrace::scheme>},
      {"arrival_scale", FieldKind::kDouble,
       &slot_of<TenancyTrace, &TenancyTrace::arrival_scale>},
      {"fail_module", FieldKind::kInt,
       &slot_of<TenancyTrace, &TenancyTrace::fail_module>},
      {"fail_time_s", FieldKind::kDouble,
       &slot_of<TenancyTrace, &TenancyTrace::fail_time_s>},
  };
  return kFields;
}

const std::vector<Field<JobSpec>>& job_fields() {
  static const std::vector<Field<JobSpec>> kFields = {
      {"name", FieldKind::kString, &slot_of<JobSpec, &JobSpec::name>},
      {"workload", FieldKind::kString, &slot_of<JobSpec, &JobSpec::workload>},
      {"modules", FieldKind::kUint64, &slot_of<JobSpec, &JobSpec::modules>},
      {"mix", FieldKind::kString, &slot_of<JobSpec, &JobSpec::mix>},
      {"arrival_s", FieldKind::kDouble, &slot_of<JobSpec, &JobSpec::arrival_s>},
      {"iterations", FieldKind::kInt, &slot_of<JobSpec, &JobSpec::iterations>},
  };
  return kFields;
}

template <typename T>
[[noreturn]] void unknown_field(const char* what, const std::string& name,
                                const std::vector<Field<T>>& fields) {
  std::string msg = std::string("TenancyTrace: unknown ") + what + " field '" +
                    name + "'";
  std::vector<std::string> names;
  names.reserve(fields.size());
  for (const Field<T>& f : fields) names.emplace_back(f.name);
  const std::string suggestion = util::nearest_name(name, names);
  if (!suggestion.empty()) msg += " (did you mean '" + suggestion + "'?)";
  msg += "; valid fields:";
  for (const Field<T>& f : fields) {
    msg += ' ';
    msg += f.name;
  }
  throw InvalidArgument(msg);
}

/// A parsed JSON value: the raw token plus whether it was a quoted string
/// (string fields require quotes, numeric fields reject them).
struct Value {
  std::string text;
  bool quoted = false;
};

template <typename T>
void assign(T& s, const char* what, const std::string& name,
            const Value& value, bool check_quotes,
            const std::vector<Field<T>>& fields) {
  for (const Field<T>& f : fields) {
    if (name != f.name) continue;
    const bool wants_string = f.kind == FieldKind::kString;
    if (check_quotes && wants_string != value.quoted) {
      throw InvalidArgument(std::string("TenancyTrace: field '") + name +
                            (wants_string ? "' needs a quoted string value"
                                          : "' needs an unquoted number"));
    }
    if (wants_string) {
      *static_cast<std::string*>(f.slot(s)) = value.text;
      return;
    }
    const char* text = value.text.c_str();
    char* end = nullptr;
    switch (f.kind) {
      case FieldKind::kUint64:
        *static_cast<std::uint64_t*>(f.slot(s)) =
            std::strtoull(text, &end, 10);
        break;
      case FieldKind::kInt:
        *static_cast<int*>(f.slot(s)) =
            static_cast<int>(std::strtol(text, &end, 10));
        break;
      case FieldKind::kDouble:
        *static_cast<double*>(f.slot(s)) = std::strtod(text, &end);
        break;
      case FieldKind::kString:
        break;  // handled above
    }
    if (end == text || (end != nullptr && *end != '\0')) {
      throw InvalidArgument("TenancyTrace: bad value '" + value.text +
                            "' for field '" + name + "'");
    }
    return;
  }
  unknown_field(what, name, fields);
}

// Removes // line and /* block */ comments; string literals are respected
// so a quoted "//" survives. Unterminated block comments throw.
std::string strip_comments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '"') {
      out += c;
      ++i;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < text.size()) out += text[i++];
        out += text[i++];
      }
      if (i < text.size()) out += text[i++];
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      const std::size_t close = text.find("*/", i + 2);
      if (close == std::string::npos) {
        throw InvalidArgument("TenancyTrace: unterminated /* comment");
      }
      i = close + 2;
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

/// Recursive-descent reader for the trace grammar: one object of scalar
/// fields, where exactly one key — "jobs" — may hold an array of flat
/// objects. One nesting level, no more.
class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  struct Document {
    std::map<std::string, Value> scalars;
    std::vector<std::map<std::string, Value>> jobs;
    bool has_jobs = false;
  };

  Document read_trace() {
    Document doc;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      finish();
      return doc;
    }
    while (true) {
      std::string key = read_string();
      expect(':');
      skip_ws();
      if (key == "jobs") {
        if (doc.has_jobs) {
          throw InvalidArgument("TenancyTrace: duplicate field in JSON");
        }
        doc.has_jobs = true;
        doc.jobs = read_jobs();
      } else {
        Value value = read_value();
        if (!doc.scalars.emplace(std::move(key), std::move(value)).second) {
          throw InvalidArgument("TenancyTrace: duplicate field in JSON");
        }
      }
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    finish();
    return doc;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("TenancyTrace: JSON parse error: " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    skip_ws();
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string read_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      // A backslash escapes the next character verbatim — the same rule
      // strip_comments applies, so the two never disagree on where a
      // string ends, and serialize()'s \" and \\ round-trip exactly.
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated string");
        c = text_[pos_++];
      }
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;
    return out;
  }

  Value read_value() {
    skip_ws();
    if (peek() == '"') return {read_string(), /*quoted=*/true};
    std::string out;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      out += text_[pos_++];
    }
    if (out.empty()) fail("expected a number or string");
    return {std::move(out), /*quoted=*/false};
  }

  std::vector<std::map<std::string, Value>> read_jobs() {
    std::vector<std::map<std::string, Value>> jobs;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return jobs;
    }
    while (true) {
      jobs.push_back(read_flat_object());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return jobs;
  }

  std::map<std::string, Value> read_flat_object() {
    std::map<std::string, Value> out;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      std::string key = read_string();
      expect(':');
      Value value = read_value();
      if (!out.emplace(std::move(key), std::move(value)).second) {
        throw InvalidArgument("TenancyTrace: duplicate field in JSON job");
      }
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return out;
  }

  void finish() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after object");
  }

  std::string text_;
  std::size_t pos_ = 0;
};

/// "cpu48+gpu16" -> canonical hw::ClassMix spec "cpu:48,gpu:16".
std::string parse_cli_mix(const std::string& spec) {
  std::string canonical;
  for (const std::string& part : util::split(spec, '+')) {
    std::size_t digits = part.size();
    while (digits > 0 &&
           std::isdigit(static_cast<unsigned char>(part[digits - 1])) != 0) {
      --digits;
    }
    if (digits == 0 || digits == part.size()) {
      throw InvalidArgument("TenancyTrace: bad class count '" + part +
                            "' (expected e.g. cpu48)");
    }
    if (!canonical.empty()) canonical += ',';
    canonical += part.substr(0, digits) + ':' + part.substr(digits);
  }
  return hw::ClassMix::parse(canonical).str();
}

/// One CLI job entry: workload:modules@arrival with an optional
/// x<iterations> suffix; modules is a count or a '+'-joined class list.
JobSpec parse_cli_job(const std::string& entry) {
  const std::size_t colon = entry.find(':');
  const std::size_t at = entry.find('@', colon == std::string::npos ? 0 : colon);
  if (colon == std::string::npos || at == std::string::npos || at < colon) {
    throw InvalidArgument(
        "TenancyTrace: bad job '" + entry +
        "' (expected workload:modules@arrival[x<iterations>])");
  }
  JobSpec job;
  job.workload = entry.substr(0, colon);
  const std::string modules = entry.substr(colon + 1, at - colon - 1);
  std::string tail = entry.substr(at + 1);
  const std::size_t x = tail.find('x');
  if (x != std::string::npos) {
    const char* iter_text = tail.c_str() + x + 1;
    char* iter_end = nullptr;
    job.iterations = static_cast<int>(std::strtol(iter_text, &iter_end, 10));
    if (iter_end == iter_text || *iter_end != '\0') {
      throw InvalidArgument("TenancyTrace: bad iterations '" +
                            tail.substr(x + 1) + "' in job '" + entry + "'");
    }
    tail = tail.substr(0, x);
  }
  const char* text = tail.c_str();
  char* end = nullptr;
  job.arrival_s = std::strtod(text, &end);
  if (end == text || (end != nullptr && *end != '\0')) {
    throw InvalidArgument("TenancyTrace: bad arrival '" + tail + "' in job '" +
                          entry + "'");
  }
  if (!modules.empty() &&
      modules.find_first_not_of("0123456789") == std::string::npos) {
    job.modules = std::strtoull(modules.c_str(), nullptr, 10);
  } else {
    job.mix = parse_cli_mix(modules);
  }
  return job;
}

/// "j<index>" via snprintf — a plain string concatenation here trips GCC
/// 12's -Wrestrict false positive (PR105329) under -O2.
std::string auto_job_name(std::size_t index) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "j%zu", index);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string placement_policy_name(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kContiguous:
      return "contiguous";
    case PlacementPolicy::kRandom:
      return "random";
    case PlacementPolicy::kStrided:
      return "strided";
    case PlacementPolicy::kWorstPower:
      return "worst-power";
    case PlacementPolicy::kBestPower:
      return "best-power";
    case PlacementPolicy::kVariationAware:
      return "variation-aware";
  }
  throw InternalError("unhandled placement policy");
}

std::string partition_policy_name(PartitionPolicy p) {
  switch (p) {
    case PartitionPolicy::kEqualShare:
      return "equal-share";
    case PartitionPolicy::kDemandProportional:
      return "demand-prop";
    case PartitionPolicy::kWaterFill:
      return "water-fill";
  }
  throw InternalError("unhandled partition policy");
}

std::vector<PlacementPolicy> all_placement_policies() {
  return {PlacementPolicy::kContiguous,  PlacementPolicy::kRandom,
          PlacementPolicy::kStrided,     PlacementPolicy::kWorstPower,
          PlacementPolicy::kBestPower,   PlacementPolicy::kVariationAware};
}

std::vector<PartitionPolicy> all_partition_policies() {
  return {PartitionPolicy::kEqualShare, PartitionPolicy::kDemandProportional,
          PartitionPolicy::kWaterFill};
}

namespace {

template <typename Policy>
Policy policy_by_name(const char* what, const std::string& name,
                      const std::vector<Policy>& all,
                      std::string (*policy_name)(Policy)) {
  std::vector<std::string> names;
  names.reserve(all.size());
  for (Policy p : all) {
    names.push_back(policy_name(p));
    if (names.back() == name) return p;
  }
  std::string msg =
      std::string("unknown ") + what + " policy '" + name + "'";
  const std::string suggestion = util::nearest_name(name, names);
  if (!suggestion.empty()) msg += " (did you mean '" + suggestion + "'?)";
  msg += "; valid:";
  for (const std::string& n : names) {
    msg += ' ';
    // vapb-lint: allow(determinism-reduction): ordered text, not an FP sum
    msg += n;
  }
  throw InvalidArgument(msg);
}

}  // namespace

PlacementPolicy placement_policy_by_name(const std::string& name) {
  return policy_by_name("placement", name, all_placement_policies(),
                        &placement_policy_name);
}

PartitionPolicy partition_policy_by_name(const std::string& name) {
  return policy_by_name("partition", name, all_partition_policies(),
                        &partition_policy_name);
}

std::uint64_t TenancyTrace::fingerprint() const {
  std::uint64_t h = mix(0x76617062746e63ULL, seed);  // "vapbtnc"
  h = mix(h, budget_cm_w);
  h = mix_str(h, placement);
  h = mix_str(h, partition);
  h = mix_str(h, scheme);
  h = mix(h, arrival_scale);
  h = mix(h, static_cast<std::uint64_t>(fail_module));
  h = mix(h, fail_time_s);
  h = mix(h, static_cast<std::uint64_t>(jobs.size()));
  for (const JobSpec& j : jobs) {
    h = mix_str(h, j.name);
    h = mix_str(h, j.workload);
    h = mix(h, j.modules);
    h = mix_str(h, j.mix);
    h = mix(h, j.arrival_s);
    h = mix(h, static_cast<std::uint64_t>(j.iterations));
  }
  return h == 0 ? 1 : h;
}

std::string TenancyTrace::serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"budget_cm_w\": " << budget_cm_w << ",\n";
  os << "  \"placement\": \"" << json_escape(placement) << "\",\n";
  os << "  \"partition\": \"" << json_escape(partition) << "\",\n";
  os << "  \"scheme\": \"" << json_escape(scheme) << "\",\n";
  os << "  \"arrival_scale\": " << arrival_scale << ",\n";
  os << "  \"fail_module\": " << fail_module << ",\n";
  os << "  \"fail_time_s\": " << fail_time_s << ",\n";
  os << "  \"jobs\": [\n";
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const JobSpec& j = jobs[k];
    os << "    {\"name\": \"" << json_escape(j.name) << "\", \"workload\": \""
       << json_escape(j.workload) << "\", ";
    if (j.mix.empty()) {
      os << "\"modules\": " << j.modules;
    } else {
      os << "\"mix\": \"" << json_escape(j.mix) << "\"";
    }
    os << ", \"arrival_s\": " << j.arrival_s
       << ", \"iterations\": " << j.iterations << "}";
    os << (k + 1 < jobs.size() ? ",\n" : "\n");
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

TenancyTrace TenancyTrace::parse(const std::string& json) {
  JsonReader reader(strip_comments(json));
  const JsonReader::Document doc = reader.read_trace();
  TenancyTrace t;
  for (const auto& [key, value] : doc.scalars) {
    assign(t, "trace", key, value, /*check_quotes=*/true, trace_fields());
  }
  for (std::size_t k = 0; k < doc.jobs.size(); ++k) {
    JobSpec job;
    for (const auto& [key, value] : doc.jobs[k]) {
      assign(job, "job", key, value, /*check_quotes=*/true, job_fields());
    }
    if (job.name.empty()) job.name = auto_job_name(k);
    if (!job.mix.empty()) job.mix = hw::ClassMix::parse(job.mix).str();
    t.jobs.push_back(std::move(job));
  }
  t.validate();
  return t;
}

TenancyTrace TenancyTrace::parse_kv(const std::string& spec) {
  TenancyTrace t;
  std::size_t pos = 0;
  while (pos <= spec.size() && !spec.empty()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (part.empty()) continue;
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) {
      throw InvalidArgument("TenancyTrace: expected key=value, got '" + part +
                            "'");
    }
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    if (key == "jobs") {
      for (const std::string& entry : util::split(value, '|')) {
        JobSpec job = parse_cli_job(entry);
        job.name = auto_job_name(t.jobs.size());
        t.jobs.push_back(std::move(job));
      }
    } else {
      assign(t, "trace", key, {value, /*quoted=*/false},
             /*check_quotes=*/false, trace_fields());
    }
    if (pos > spec.size()) break;
  }
  t.validate();
  return t;
}

void TenancyTrace::validate() const {
  auto require = [](bool ok, const std::string& what) {
    if (!ok) throw InvalidArgument("TenancyTrace: " + what);
  };
  require(std::isfinite(budget_cm_w) && budget_cm_w > 0.0,
          "budget_cm_w must be > 0");
  require(std::isfinite(arrival_scale) && arrival_scale > 0.0,
          "arrival_scale must be > 0");
  require(!scheme.empty(), "scheme must be non-empty");
  require(fail_module >= -1, "fail_module must be >= -1 (-1 = none)");
  require(std::isfinite(fail_time_s) && fail_time_s >= 0.0,
          "fail_time_s must be >= 0");
  // Resolve the policies: unknown spellings throw with a suggestion.
  (void)placement_policy_by_name(placement);
  (void)partition_policy_by_name(partition);
  require(!jobs.empty(), "at least one job is required");
  for (const JobSpec& j : jobs) {
    require(!j.name.empty(), "job names must be non-empty");
    require(!j.workload.empty(), "job '" + j.name + "' needs a workload");
    require((j.modules > 0) != (!j.mix.empty()),
            "job '" + j.name +
                "' needs exactly one of a module count or a class mix");
    if (!j.mix.empty()) {
      require(hw::ClassMix::parse(j.mix).total() > 0,
              "job '" + j.name + "' requests an empty class mix");
    }
    require(std::isfinite(j.arrival_s) && j.arrival_s >= 0.0,
            "job '" + j.name + "' needs arrival_s >= 0");
    require(j.iterations >= 0,
            "job '" + j.name + "' needs iterations >= 0");
  }
  for (std::size_t a = 0; a < jobs.size(); ++a) {
    for (std::size_t b = a + 1; b < jobs.size(); ++b) {
      require(jobs[a].name != jobs[b].name,
              "duplicate job name '" + jobs[a].name + "'");
    }
  }
}

}  // namespace vapb::tenancy
