#include "tenancy/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <utility>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace vapb::tenancy {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

void write_json_number(std::ostream& out, double v) {
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << "null";
  }
}

double ratio(double value, double baseline) {
  if (!std::isfinite(value) || !std::isfinite(baseline) || baseline == 0.0) {
    return kNaN;
  }
  return value / baseline;
}

}  // namespace

const TenancyPointResult& TenancyCampaignResult::point(
    double arrival_scale, const std::string& placement,
    const std::string& partition) const {
  const auto it = std::find_if(
      points.begin(), points.end(), [&](const TenancyPointResult& p) {
        return p.trace.arrival_scale == arrival_scale &&
               p.trace.placement == placement &&
               p.trace.partition == partition;
      });
  if (it == points.end()) {
    throw InvalidArgument("TenancyCampaignResult: no point (" + placement +
                          ", " + partition + ") at that arrival scale");
  }
  return *it;
}

TenancyCampaign::TenancyCampaign(const cluster::Cluster& cluster,
                                 std::shared_ptr<const core::Pvt> pvt,
                                 std::size_t threads, TenancyOptions options)
    : cluster_(cluster),
      pvt_(std::move(pvt)),
      threads_(threads),
      options_(options) {
  if (!pvt_) throw InvalidArgument("TenancyCampaign: null PVT");
}

std::vector<TenancyTrace> TenancyCampaign::expand(const TenancyGrid& grid) {
  if (grid.arrival_scales.empty() || grid.policies.empty()) {
    throw InvalidArgument("TenancyGrid needs at least one value per axis");
  }
  std::vector<TenancyTrace> out;
  out.reserve(grid.point_count());
  for (const double scale : grid.arrival_scales) {
    for (const PolicyPair& pair : grid.policies) {
      TenancyTrace trace = grid.base;
      trace.arrival_scale = scale;
      trace.placement = pair.placement;
      trace.partition = pair.partition;
      trace.validate();
      out.push_back(std::move(trace));
    }
  }
  return out;
}

TenancyCampaignResult TenancyCampaign::run(const TenancyGrid& grid) const {
  const std::vector<TenancyTrace> traces = expand(grid);
  const MachineScheduler scheduler(cluster_, pvt_, options_);

  TenancyCampaignResult result;
  result.points.resize(traces.size());
  const auto run_one = [&](std::size_t k) {
    result.points[k].trace = traces[k];
    result.points[k].result = scheduler.run(traces[k]);
  };
  if (threads_ == 1 || traces.size() <= 1) {
    for (std::size_t k = 0; k < traces.size(); ++k) run_one(k);
  } else {
    util::ThreadPool pool(threads_ == 0 ? 0
                                        : std::min(threads_, traces.size()));
    util::parallel_for(pool, traces.size(), run_one, /*grain=*/1);
  }

  // Score every point against the naive (contiguous, equal-share) point at
  // its arrival scale — fixed order, after the barrier, so the ratios are
  // thread-count independent.
  for (TenancyPointResult& p : result.points) {
    const TenancyPointResult* naive = nullptr;
    for (const TenancyPointResult& q : result.points) {
      if (q.trace.arrival_scale == p.trace.arrival_scale &&
          q.trace.placement == "contiguous" &&
          q.trace.partition == "equal-share") {
        naive = &q;
        break;
      }
    }
    if (naive == nullptr) {
      p.throughput_vs_naive = kNaN;
      p.makespan_vs_naive = kNaN;
      p.fairness_vs_naive = kNaN;
      continue;
    }
    p.throughput_vs_naive =
        ratio(p.result.throughput_jph, naive->result.throughput_jph);
    p.makespan_vs_naive = ratio(p.result.makespan_s, naive->result.makespan_s);
    p.fairness_vs_naive =
        ratio(p.result.jain_fairness, naive->result.jain_fairness);
  }
  return result;
}

void write_tenancy_campaign_json(const TenancyCampaignResult& result,
                                 std::ostream& out) {
  const auto saved = out.precision(17);
  out << "{\"points\":[";
  for (std::size_t p = 0; p < result.points.size(); ++p) {
    const TenancyPointResult& point = result.points[p];
    if (p) out << ',';
    out << "{\"trace\":" << point.trace.serialize()
        << ",\"fingerprint\":" << point.result.trace_fingerprint
        << ",\"makespan_s\":";
    write_json_number(out, point.result.makespan_s);
    out << ",\"throughput_jph\":";
    write_json_number(out, point.result.throughput_jph);
    out << ",\"mean_wait_s\":";
    write_json_number(out, point.result.mean_wait_s);
    out << ",\"mean_slowdown\":";
    write_json_number(out, point.result.mean_slowdown);
    out << ",\"jain_fairness\":";
    write_json_number(out, point.result.jain_fairness);
    out << ",\"energy_j\":";
    write_json_number(out, point.result.energy_j);
    out << ",\"power_utilization\":";
    write_json_number(out, point.result.power_utilization);
    out << ",\"resolves\":" << point.result.resolves
        << ",\"throughput_vs_naive\":";
    write_json_number(out, point.throughput_vs_naive);
    out << ",\"makespan_vs_naive\":";
    write_json_number(out, point.makespan_vs_naive);
    out << ",\"fairness_vs_naive\":";
    write_json_number(out, point.fairness_vs_naive);
    out << ",\"jobs\":[";
    for (std::size_t j = 0; j < point.result.jobs.size(); ++j) {
      const JobOutcome& o = point.result.jobs[j];
      if (j) out << ',';
      out << "{\"name\":\"" << json_escape(o.name) << "\",\"workload\":\""
          << json_escape(o.workload) << "\",\"modules\":" << o.modules
          << ",\"arrival_s\":";
      write_json_number(out, o.arrival_s);
      out << ",\"start_s\":";
      write_json_number(out, o.start_s);
      out << ",\"finish_s\":";
      write_json_number(out, o.finish_s);
      out << ",\"wait_s\":";
      write_json_number(out, o.wait_s);
      out << ",\"turnaround_s\":";
      write_json_number(out, o.turnaround_s);
      out << ",\"solo_s\":";
      write_json_number(out, o.solo_s);
      out << ",\"slowdown\":";
      write_json_number(out, o.slowdown);
      out << ",\"energy_j\":";
      write_json_number(out, o.energy_j);
      out << ",\"final_budget_w\":";
      write_json_number(out, o.final_budget_w);
      out << ",\"segments\":" << o.segments << ",\"stalls\":" << o.stalls
          << ",\"modules_lost\":" << o.modules_lost << '}';
    }
    out << "]}";
  }
  out << "]}";
  out.precision(saved);
}

}  // namespace vapb::tenancy
