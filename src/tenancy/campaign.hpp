// TenancyCampaign — the co-scheduling policy sweep: how much throughput,
// makespan and fairness does smarter module placement plus dynamic power
// partitioning buy over naive equal-split, and how does the gap move with
// arrival intensity?
//
// A TenancyGrid crosses arrival scales x (placement, partition) policy
// pairs over one base trace; every grid point runs the full MachineScheduler
// simulation and is scored against the naive (contiguous, equal-share)
// point at the same arrival scale.
//
// Deterministic: grid expansion and reductions are fixed-order and every
// point is a pure function of (cluster, trace), so the result is bitwise
// identical at any thread count.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "tenancy/machine_scheduler.hpp"

namespace vapb::tenancy {

/// One (placement, partition) policy pair of the sweep.
struct PolicyPair {
  std::string placement;
  std::string partition;
};

/// The cross-product to sweep. `base` carries the jobs and every trace knob
/// the grid does not vary; each point overrides arrival_scale, placement
/// and partition.
struct TenancyGrid {
  std::vector<double> arrival_scales = {1.0, 0.5, 0.25};
  /// Policy pairs, naive first by convention. Defaults to naive equal-split
  /// vs the variation-aware + water-filling combination the paper's
  /// variation analysis motivates.
  std::vector<PolicyPair> policies = {
      {"contiguous", "equal-share"},
      {"variation-aware", "water-fill"},
  };
  TenancyTrace base;

  [[nodiscard]] std::size_t point_count() const {
    return arrival_scales.size() * policies.size();
  }
};

/// One grid point: the trace actually run and its simulation result, plus
/// ratios against the naive (contiguous, equal-share) point at the same
/// arrival scale (NaN when the grid has no such point or the baseline
/// metric is zero; exactly 1 on the naive point itself).
struct TenancyPointResult {
  TenancyTrace trace;
  TenancyResult result;
  double throughput_vs_naive = 0.0;  ///< > 1 = more jobs per hour than naive
  double makespan_vs_naive = 0.0;    ///< < 1 = finished the trace sooner
  double fairness_vs_naive = 0.0;    ///< > 1 = fairer slowdowns
};

struct TenancyCampaignResult {
  /// One entry per grid point, in expansion order (arrival scale outermost,
  /// then policy pair).
  std::vector<TenancyPointResult> points;

  /// First point matching the pair at `arrival_scale` (exact compare);
  /// throws InvalidArgument when the sweep has no such point.
  [[nodiscard]] const TenancyPointResult& point(
      double arrival_scale, const std::string& placement,
      const std::string& partition) const;
};

class TenancyCampaign {
 public:
  /// `threads` fans the grid points across a pool (0 = hardware
  /// concurrency, 1 = serial); the results never depend on it.
  TenancyCampaign(const cluster::Cluster& cluster,
                  std::shared_ptr<const core::Pvt> pvt,
                  std::size_t threads = 0, TenancyOptions options = {});

  /// The deterministic trace expansion of `grid` (every trace validated).
  [[nodiscard]] static std::vector<TenancyTrace> expand(
      const TenancyGrid& grid);

  /// Runs every grid point and scores it against the naive point of its
  /// arrival scale.
  [[nodiscard]] TenancyCampaignResult run(const TenancyGrid& grid) const;

 private:
  const cluster::Cluster& cluster_;
  std::shared_ptr<const core::Pvt> pvt_;
  std::size_t threads_;
  TenancyOptions options_;
};

/// The sweep as one JSON object: every point's trace, system metrics,
/// vs-naive ratios and per-job outcomes (non-finite values become null).
void write_tenancy_campaign_json(const TenancyCampaignResult& result,
                                 std::ostream& out);

}  // namespace vapb::tenancy
