#include "tenancy/machine_scheduler.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>
#include <utility>

#include "cluster/scheduler.hpp"
#include "core/calibration_cache.hpp"
#include "core/campaign.hpp"
#include "core/pmt.hpp"
#include "hw/device_class.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::tenancy {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

cluster::AllocationPolicy to_allocation_policy(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kContiguous:
      return cluster::AllocationPolicy::kContiguous;
    case PlacementPolicy::kRandom:
      return cluster::AllocationPolicy::kRandom;
    case PlacementPolicy::kStrided:
      return cluster::AllocationPolicy::kStrided;
    case PlacementPolicy::kWorstPower:
      return cluster::AllocationPolicy::kWorstPower;
    case PlacementPolicy::kBestPower:
      return cluster::AllocationPolicy::kBestPower;
    case PlacementPolicy::kVariationAware:
      break;
  }
  throw InternalError("tenancy: no cluster policy for variation-aware");
}

/// One job currently holding modules: its remaining work and the pipeline
/// segment it is executing (seg_makespan_s == inf while the job is stalled
/// on an infeasible power share).
struct Running {
  std::size_t job = 0;
  const workloads::Workload* w = nullptr;
  std::vector<hw::ModuleId> alloc;
  int remaining = 0;
  double budget_w = -1.0;
  double seg_start_s = 0.0;
  double seg_makespan_s = kInf;
  int seg_iterations = 0;
  double seg_power_w = 0.0;
  bool needs_restart = true;  ///< fresh admission or allocation change
  bool stalled = false;
  std::shared_ptr<const core::TestRunResult> test;
  std::shared_ptr<const core::Pmt> floors;  ///< scheduler-side calibrated PMT
  std::shared_ptr<const core::Pmt> oracle;  ///< ground truth for feasibility
  core::RunMetrics metrics;                 ///< last solved segment

  [[nodiscard]] double predicted_finish_s() const {
    return seg_start_s + seg_makespan_s;
  }
};

/// Rebuilds the per-allocation calibration artifacts the scheduler reads:
/// the canonical cached test run(s), the calibrated PMT whose floors and
/// demands drive power partitioning, and the oracle PMT that classifies a
/// share as feasible. All seeds are the canonical campaign forks, so every
/// artifact is shared with ordinary campaign runs over the same allocation.
void build_artifacts(const cluster::Cluster& cluster, const core::Pvt& pvt,
                     Running& r) {
  core::CalibrationCache& cache = core::CalibrationCache::global();
  r.test = cache.test_run(cluster, r.alloc.front(), *r.w,
                          core::test_run_seed(cluster, *r.w));
  if (cluster.heterogeneous()) {
    core::ClassTestRuns class_tests;
    const hw::DeviceClass front_class = cluster.device_class(r.alloc.front());
    class_tests[hw::device_class_index(front_class)] = r.test;
    for (hw::ModuleId id : r.alloc) {
      const hw::DeviceClass c = cluster.device_class(id);
      std::shared_ptr<const core::TestRunResult>& slot =
          class_tests[hw::device_class_index(c)];
      if (slot) continue;
      slot = cache.test_run(
          cluster, id, *r.w,
          core::test_run_seed(cluster, *r.w).fork(hw::device_class_name(c)));
    }
    r.floors = std::make_shared<const core::Pmt>(
        core::calibrate_pmt_per_class(cluster, pvt, class_tests, r.alloc));
  } else {
    r.floors = std::make_shared<const core::Pmt>(core::calibrate_pmt(
        pvt, *r.test, r.alloc, cluster.spec().ladder));
  }
  r.oracle = cache.oracle(cluster, r.alloc, *r.w,
                          core::oracle_seed(cluster, *r.w));
}

/// Splits the machine envelope across the running jobs. Returns one budget
/// per running entry, in `running` order; plain scalar loops in fixed order
/// keep the split bitwise deterministic.
std::vector<double> partition_budgets(PartitionPolicy policy, double machine_w,
                                      const std::vector<Running>& running) {
  const std::size_t n = running.size();
  std::vector<double> out(n, 0.0);
  double total_modules = 0.0;
  for (const Running& r : running) {
    // vapb-lint: allow(determinism-taint): fixed admission order
    total_modules += static_cast<double>(r.alloc.size());
  }

  if (policy == PartitionPolicy::kEqualShare) {
    for (std::size_t j = 0; j < n; ++j) {
      out[j] = machine_w *
               (static_cast<double>(running[j].alloc.size()) / total_modules);
    }
    return out;
  }

  std::vector<double> floor_w(n);
  std::vector<double> demand_w(n);
  double sum_floor = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    floor_w[j] = running[j].floors->total_min_w().value();
    demand_w[j] = running[j].floors->total_max_w().value();
    // vapb-lint: allow(determinism-taint): fixed admission order
    sum_floor += floor_w[j];
  }

  if (machine_w <= sum_floor) {
    // Over-committed: scale everyone's floor down proportionally (some or
    // all shares will classify infeasible and stall until a job finishes).
    for (std::size_t j = 0; j < n; ++j) {
      out[j] = machine_w * (floor_w[j] / sum_floor);
    }
    return out;
  }

  if (policy == PartitionPolicy::kDemandProportional) {
    double sum_span = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      // vapb-lint: allow(determinism-taint): fixed admission order
      sum_span += std::max(0.0, demand_w[j] - floor_w[j]);
    }
    const double surplus = machine_w - sum_floor;
    for (std::size_t j = 0; j < n; ++j) {
      const double share =
          sum_span > 0.0
              ? std::max(0.0, demand_w[j] - floor_w[j]) / sum_span
              : static_cast<double>(running[j].alloc.size()) / total_modules;
      out[j] = floor_w[j] + surplus * share;
    }
    return out;
  }

  // Water-fill: everyone starts at their floor; the surplus is poured
  // per-module across the unclamped jobs, clamping each at its demand and
  // redistributing what it could not absorb — the job-level analogue of
  // solve_budget_tree's node water-filling.
  double surplus = machine_w - sum_floor;
  std::vector<char> clamped(n, 0);
  for (std::size_t j = 0; j < n; ++j) out[j] = floor_w[j];
  while (surplus > 1e-12) {
    double open_modules = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      // vapb-lint: allow(determinism-taint): fixed admission order
      if (clamped[j] == 0) open_modules += static_cast<double>(
                               running[j].alloc.size());
    }
    if (open_modules <= 0.0) break;  // everyone saturated; leave the rest
    const double per_module_w = surplus / open_modules;
    bool clamped_any = false;
    for (std::size_t j = 0; j < n; ++j) {
      if (clamped[j] != 0) continue;
      const double want =
          out[j] + per_module_w * static_cast<double>(running[j].alloc.size());
      if (want >= demand_w[j]) {
        surplus -= demand_w[j] - out[j];
        out[j] = demand_w[j];
        clamped[j] = 1;
        clamped_any = true;
      }
    }
    if (!clamped_any) {
      for (std::size_t j = 0; j < n; ++j) {
        if (clamped[j] != 0) continue;
        out[j] += per_module_w * static_cast<double>(running[j].alloc.size());
      }
      break;
    }
  }
  return out;
}

}  // namespace

double jain_index(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    // vapb-lint: allow(determinism-taint): fixed index order
    sum += x;
    // vapb-lint: allow(determinism-taint): fixed index order
    sum_sq += x * x;
  }
  if (xs.empty() || sum_sq <= 0.0) return 0.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

MachineScheduler::MachineScheduler(const cluster::Cluster& cluster,
                                   std::shared_ptr<const core::Pvt> pvt,
                                   TenancyOptions options)
    : cluster_(cluster), pvt_(std::move(pvt)), options_(options) {
  if (!pvt_) throw InvalidArgument("MachineScheduler: null PVT");
}

std::vector<hw::ModuleId> MachineScheduler::place(
    const std::vector<hw::ModuleId>& free_pool, const JobSpec& job,
    PlacementPolicy policy, util::SeedSequence seed) const {
  const workloads::Workload& w = workloads::by_name(job.workload);

  // The variation-aware rank: a module's calibrated power appetite is the
  // mean of its fmax PVT scales. Pool sorted hungry-first (ties by id), a
  // window slides by the workload's compute fraction: frequency-insensitive
  // jobs (cpu_fraction ~ 0) absorb the power-hungry silicon where the lost
  // clocks cost them nothing, frequency-bound jobs get the efficient
  // silicon that runs fastest per watt of share.
  const auto variation_pick = [&](const std::vector<hw::ModuleId>& pool,
                                  std::size_t count) {
    if (count == 0) throw InvalidArgument("Scheduler: count must be > 0");
    if (count > pool.size()) {
      throw InvalidArgument("Scheduler: requested " + std::to_string(count) +
                            " modules, block has " +
                            std::to_string(pool.size()));
    }
    std::vector<std::pair<double, hw::ModuleId>> ranked;
    ranked.reserve(pool.size());
    for (const hw::ModuleId id : pool) {
      const core::PvtEntry& e = pvt_->entry(id);
      ranked.emplace_back(-(e.cpu_max + e.dram_max) / 2.0, id);
    }
    std::sort(ranked.begin(), ranked.end());
    // The catalog's cpu fractions only span ~[0.45, 0.99]; stretch that
    // band over the whole ranking so the least frequency-sensitive job in
    // the system actually takes the power-hungry head (and the most
    // cpu-bound job the efficient tail) instead of everyone crowding the
    // middle and leaving the hungriest silicon to whoever places last.
    const double cf = std::clamp(w.cpu_fraction, 0.0, 1.0);
    const double t = std::clamp((cf - 0.5) / 0.45, 0.0, 1.0);
    const auto offset = static_cast<std::size_t>(std::llround(
        static_cast<double>(pool.size() - count) * t));
    std::vector<hw::ModuleId> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(ranked[offset + i].second);
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  const auto pick = [&](const std::vector<hw::ModuleId>& pool,
                        std::size_t count, util::SeedSequence s) {
    if (policy == PlacementPolicy::kVariationAware) {
      return variation_pick(pool, count);
    }
    cluster::Scheduler scheduler(cluster_);
    return scheduler.allocate_from(pool, count, to_allocation_policy(policy),
                                   s, &w.profile);
  };

  if (job.mix.empty()) {
    return pick(free_pool, static_cast<std::size_t>(job.modules), seed);
  }

  // Class mixes select within each class's slice of the free pool, under a
  // per-class seed fork (same convention as Scheduler::allocate_mix).
  const hw::ClassMix want = hw::ClassMix::parse(job.mix);
  std::vector<hw::ModuleId> out;
  out.reserve(want.total());
  for (const hw::DeviceClass c : hw::all_device_classes()) {
    const std::size_t count = want.count(c);
    if (count == 0) continue;
    std::vector<hw::ModuleId> class_pool;
    for (const hw::ModuleId id : free_pool) {
      if (cluster_.device_class(id) == c) class_pool.push_back(id);
    }
    std::vector<hw::ModuleId> picks =
        pick(class_pool, count, seed.fork(hw::device_class_name(c)));
    out.insert(out.end(), picks.begin(), picks.end());
  }
  return out;
}

TenancyResult MachineScheduler::run(const TenancyTrace& trace) const {
  trace.validate();
  const PlacementPolicy placement = placement_policy_by_name(trace.placement);
  const PartitionPolicy partition = partition_policy_by_name(trace.partition);
  const double machine_w =
      trace.budget_cm_w * static_cast<double>(cluster_.size());
  const std::size_t n_jobs = trace.jobs.size();

  // Per-job requests, validated against the machine up front.
  std::vector<hw::ClassMix> mixes(n_jobs);
  std::vector<std::size_t> requests(n_jobs);
  for (std::size_t k = 0; k < n_jobs; ++k) {
    const JobSpec& job = trace.jobs[k];
    if (job.mix.empty()) {
      requests[k] = static_cast<std::size_t>(job.modules);
      if (requests[k] > cluster_.size()) {
        throw InvalidArgument("tenancy: job '" + job.name + "' requests " +
                              std::to_string(requests[k]) +
                              " modules, machine has " +
                              std::to_string(cluster_.size()));
      }
    } else {
      mixes[k] = hw::ClassMix::parse(job.mix);
      requests[k] = mixes[k].total();
      for (const hw::DeviceClass c : hw::all_device_classes()) {
        if (mixes[k].count(c) > cluster_.mix().count(c)) {
          throw InvalidArgument(
              "tenancy: job '" + job.name + "' requests " +
              std::to_string(mixes[k].count(c)) + " " +
              hw::device_class_name(c) + " modules, machine has " +
              std::to_string(cluster_.mix().count(c)));
        }
      }
    }
  }

  // Arrival order: effective time, ties by trace position.
  std::vector<double> arrival_s(n_jobs);
  for (std::size_t k = 0; k < n_jobs; ++k) {
    arrival_s[k] = trace.jobs[k].arrival_s * trace.arrival_scale;
  }
  std::vector<std::size_t> order(n_jobs);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return arrival_s[a] < arrival_s[b];
                   });

  TenancyResult result;
  result.trace_fingerprint = trace.fingerprint();
  result.jobs.resize(n_jobs);
  for (std::size_t k = 0; k < n_jobs; ++k) {
    JobOutcome& o = result.jobs[k];
    o.name = trace.jobs[k].name;
    o.workload = trace.jobs[k].workload;
    o.arrival_s = arrival_s[k];
    o.start_s = kNaN;
    o.finish_s = kNaN;
    o.slowdown = kNaN;
    o.solo_s = kNaN;
  }

  std::vector<hw::ModuleId> pool(cluster_.size());
  std::iota(pool.begin(), pool.end(), hw::ModuleId{0});
  std::deque<std::size_t> queue;
  std::vector<Running> running;
  std::size_t next_arrival = 0;
  std::size_t finished = 0;
  bool fail_pending = trace.fail_module >= 0;

  const auto fits = [&](std::size_t k) {
    if (trace.jobs[k].mix.empty()) return requests[k] <= pool.size();
    std::array<std::size_t, hw::kDeviceClassCount> have{};
    for (const hw::ModuleId id : pool) {
      ++have[hw::device_class_index(cluster_.device_class(id))];
    }
    for (const hw::DeviceClass c : hw::all_device_classes()) {
      if (mixes[k].count(c) > have[hw::device_class_index(c)]) return false;
    }
    return true;
  };

  // Cuts the active segment at time t, banking completed iterations (floor,
  // never the full segment — completion is its own event) and the energy
  // the job actually drew. The banked interval is consumed: the segment
  // shrinks to its unbanked remainder, so cutting twice at the same t (the
  // failure handler cuts, then the re-partition cuts again) banks nothing
  // the second time.
  const auto advance = [&](Running& r, double t) {
    if (r.stalled || !(t > r.seg_start_s) || r.seg_iterations == 0) return;
    const double elapsed = t - r.seg_start_s;
    const double frac = elapsed / r.seg_makespan_s;
    int done = static_cast<int>(
        std::floor(static_cast<double>(r.seg_iterations) * frac));
    done = std::clamp(done, 0, r.seg_iterations - 1);
    r.remaining -= done;
    result.jobs[r.job].energy_j += r.seg_power_w * elapsed;
    r.seg_start_s = t;
    r.seg_makespan_s -= elapsed;
    r.seg_iterations -= done;
  };

  // Starts a fresh pipeline segment at time t under power share b_w: the
  // staged pipeline re-solves the job's budget over its current allocation
  // and remaining iterations. Infeasible shares (below the oracle's fmin
  // floor, the campaign's "-" classification) stall the job until the next
  // re-partition.
  const auto start_segment = [&](Running& r, double t, double b_w) {
    r.budget_w = b_w;
    r.seg_start_s = t;
    r.seg_iterations = 0;
    if (core::classify_cell(*r.oracle, b_w) == core::CellClass::kInfeasible) {
      r.stalled = true;
      r.seg_makespan_s = kInf;
      r.seg_power_w = 0.0;
      ++result.jobs[r.job].stalls;
      return;
    }
    core::RunConfig cfg = options_.config;
    cfg.iterations = r.remaining;
    if (options_.fault != nullptr) cfg.fault = options_.fault;
    const core::Runner runner(cluster_, r.alloc, cfg);
    r.metrics = core::run_scheme_cached(cluster_, runner, *r.w, trace.scheme,
                                        b_w, *pvt_, *r.test);
    if (!(r.metrics.makespan_s > 0.0)) {
      throw InternalError("tenancy: pipeline returned a non-positive makespan");
    }
    r.stalled = false;
    r.seg_makespan_s = r.metrics.makespan_s;
    r.seg_iterations = r.remaining;
    r.seg_power_w = r.metrics.total_power_w;
    result.jobs[r.job].final_budget_w = b_w;
    ++result.jobs[r.job].segments;
    ++result.resolves;
  };

  const auto finish_job = [&](Running& r, double t) {
    JobOutcome& o = result.jobs[r.job];
    o.finish_s = t;
    o.turnaround_s = t - o.arrival_s;
    o.modules = r.alloc.size();
    o.allocation = r.alloc;
    o.final_metrics = std::move(r.metrics);
    pool.insert(pool.end(), r.alloc.begin(), r.alloc.end());
    std::sort(pool.begin(), pool.end());
    ++finished;
  };

  double t = 0.0;
  while (finished < n_jobs) {
    double t_next = kInf;
    if (next_arrival < n_jobs) {
      t_next = std::min(t_next, arrival_s[order[next_arrival]]);
    }
    for (const Running& r : running) {
      if (!r.stalled) t_next = std::min(t_next, r.predicted_finish_s());
    }
    if (fail_pending) t_next = std::min(t_next, trace.fail_time_s);
    if (!std::isfinite(t_next)) {
      throw InternalError(
          "tenancy: simulation deadlocked — every running job is stalled on "
          "an infeasible share (or a queued job can no longer be admitted) "
          "and no event is pending");
    }
    t = t_next;
    bool changed = false;

    // 1. Completions: segments whose predicted finish has arrived.
    for (auto it = running.begin(); it != running.end();) {
      if (!it->stalled && it->predicted_finish_s() <= t) {
        result.jobs[it->job].energy_j += it->seg_power_w * it->seg_makespan_s;
        it->remaining -= it->seg_iterations;
        finish_job(*it, t);
        it = running.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }

    // 2. The trace-level module failure.
    if (fail_pending && trace.fail_time_s <= t) {
      fail_pending = false;
      const auto dead = static_cast<hw::ModuleId>(trace.fail_module);
      const auto in_pool = std::find(pool.begin(), pool.end(), dead);
      if (in_pool != pool.end()) {
        pool.erase(in_pool);  // retired while idle; nobody re-plans
      } else {
        for (auto it = running.begin(); it != running.end(); ++it) {
          const auto hit = std::find(it->alloc.begin(), it->alloc.end(), dead);
          if (hit == it->alloc.end()) continue;
          advance(*it, t);
          it->alloc.erase(hit);
          ++result.jobs[it->job].modules_lost;
          // The lowest-id spare of the dead module's device class replaces
          // it, preserving the class composition admission validated; with
          // no same-class spare the job runs on one module fewer.
          const hw::DeviceClass dead_class = cluster_.device_class(dead);
          const auto spare =
              std::find_if(pool.begin(), pool.end(), [&](hw::ModuleId id) {
                return cluster_.device_class(id) == dead_class;
              });
          if (spare != pool.end()) {
            it->alloc.push_back(*spare);
            pool.erase(spare);
            std::sort(it->alloc.begin(), it->alloc.end());
          }
          if (it->alloc.empty()) {
            // Nothing left to run on: the job ends where the failure left it.
            finish_job(*it, t);
            running.erase(it);
          } else {
            build_artifacts(cluster_, *pvt_, *it);
            it->needs_restart = true;
          }
          changed = true;
          break;
        }
      }
    }

    // 3. Arrivals join the FCFS queue.
    while (next_arrival < n_jobs && arrival_s[order[next_arrival]] <= t) {
      queue.push_back(order[next_arrival]);
      ++next_arrival;
    }

    // 4. Strict-FCFS admission: stop at the first job that does not fit.
    while (!queue.empty() && fits(queue.front())) {
      const std::size_t k = queue.front();
      queue.pop_front();
      Running r;
      r.job = k;
      r.w = &workloads::by_name(trace.jobs[k].workload);
      r.alloc = place(pool, trace.jobs[k], placement,
                      util::SeedSequence(trace.seed).fork("place", k));
      std::vector<hw::ModuleId> next_pool;
      next_pool.reserve(pool.size() - r.alloc.size());
      std::set_difference(pool.begin(), pool.end(), r.alloc.begin(),
                          r.alloc.end(), std::back_inserter(next_pool));
      pool = std::move(next_pool);
      r.remaining = trace.jobs[k].iterations > 0
                        ? trace.jobs[k].iterations
                        : r.w->default_iterations;
      build_artifacts(cluster_, *pvt_, r);
      JobOutcome& o = result.jobs[k];
      o.start_s = t;
      o.wait_s = t - o.arrival_s;
      running.push_back(std::move(r));
      changed = true;
    }

    // 5. Re-partition: when the running set changed, every job whose share
    // moved (bitwise) or whose allocation changed gets a fresh segment.
    if (changed && !running.empty()) {
      const std::vector<double> budgets =
          partition_budgets(partition, machine_w, running);
      for (std::size_t j = 0; j < running.size(); ++j) {
        Running& r = running[j];
        if (!r.needs_restart && budgets[j] == r.budget_w) continue;
        advance(r, t);
        start_segment(r, t, budgets[j]);
        r.needs_restart = false;
      }
    }
  }

  // Solo references: each job run alone at its machine-proportional share
  // (budget_cm_w per module it held) — the slowdown normalization.
  for (std::size_t k = 0; k < n_jobs; ++k) {
    JobOutcome& o = result.jobs[k];
    if (o.allocation.empty()) continue;
    Running solo;
    solo.job = k;
    solo.w = &workloads::by_name(trace.jobs[k].workload);
    solo.alloc = o.allocation;
    build_artifacts(cluster_, *pvt_, solo);
    const double b_ref =
        machine_w * (static_cast<double>(o.allocation.size()) /
                     static_cast<double>(cluster_.size()));
    if (core::classify_cell(*solo.oracle, b_ref) ==
        core::CellClass::kInfeasible) {
      continue;  // solo_s / slowdown stay NaN
    }
    core::RunConfig cfg = options_.config;
    cfg.iterations = trace.jobs[k].iterations;
    if (options_.fault != nullptr) cfg.fault = options_.fault;
    const core::Runner runner(cluster_, solo.alloc, cfg);
    const core::RunMetrics m = core::run_scheme_cached(
        cluster_, runner, *solo.w, trace.scheme, b_ref, *pvt_, *solo.test);
    o.solo_s = m.makespan_s;
    if (o.solo_s > 0.0) o.slowdown = o.turnaround_s / o.solo_s;
  }

  // System metrics.
  double makespan = 0.0;
  double wait_sum = 0.0;
  double energy_sum = 0.0;
  std::vector<double> slowdowns;
  for (const JobOutcome& o : result.jobs) {
    makespan = std::max(makespan, o.finish_s);
    // vapb-lint: allow(determinism-taint): fixed trace order
    wait_sum += o.wait_s;
    // vapb-lint: allow(determinism-taint): fixed trace order
    energy_sum += o.energy_j;
    if (std::isfinite(o.slowdown)) slowdowns.push_back(o.slowdown);
  }
  result.makespan_s = makespan;
  result.mean_wait_s = wait_sum / static_cast<double>(n_jobs);
  result.energy_j = energy_sum;
  result.throughput_jph =
      makespan > 0.0 ? static_cast<double>(n_jobs) / makespan * 3600.0 : 0.0;
  double slowdown_sum = 0.0;
  for (const double s : slowdowns) {
    // vapb-lint: allow(determinism-taint): fixed trace order
    slowdown_sum += s;
  }
  result.mean_slowdown =
      slowdowns.empty() ? kNaN
                        : slowdown_sum / static_cast<double>(slowdowns.size());
  result.jain_fairness = jain_index(slowdowns);
  result.power_utilization =
      makespan > 0.0 ? energy_sum / (machine_w * makespan) : 0.0;
  return result;
}

}  // namespace vapb::tenancy
