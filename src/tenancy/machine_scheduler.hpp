// MachineScheduler — the multi-tenant co-scheduling simulation.
//
// A deterministic discrete-event loop over one machine: jobs from a
// TenancyTrace arrive over (simulated) time, wait in a strict-FCFS queue,
// and run concurrently once modules are free. At every event that changes
// the running set — an admission, a completion, a module failure — the
// scheduler re-partitions the machine power envelope across the running
// jobs and re-solves each affected job's budget through the existing staged
// pipeline (the dynamic re-solve machinery): each job's execution is a
// sequence of pipeline segments, cut at iteration granularity whenever its
// power share or allocation changes.
//
// Everything is a pure function of (cluster, trace, options): simulated
// time only, all randomness through the trace seed's forks, bit-identical
// regardless of the host machine or thread count.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/pvt.hpp"
#include "core/runner.hpp"
#include "tenancy/trace.hpp"

namespace vapb::fault {
class FaultInjector;
}  // namespace vapb::fault

namespace vapb::tenancy {

struct TenancyOptions {
  /// Base run configuration for every pipeline segment (iterations are
  /// overridden per segment with the job's remaining work).
  core::RunConfig config;
  /// Optional fault injector composed into every segment (not owned, may be
  /// null; must outlive the run) — the fault subsystem's perturbations on
  /// top of the trace-level module failure.
  const fault::FaultInjector* fault = nullptr;
};

/// What happened to one job of the trace.
struct JobOutcome {
  std::string name;
  std::string workload;
  std::size_t modules = 0;     ///< granted module count (after any failure)
  double arrival_s = 0.0;      ///< effective (scaled) arrival time
  double start_s = 0.0;        ///< first admission
  double finish_s = 0.0;
  double wait_s = 0.0;         ///< start - arrival
  double turnaround_s = 0.0;   ///< finish - arrival
  /// Makespan of the same job run alone at its machine-proportional power
  /// share (budget_cm_w x modules) — the normalization for slowdown.
  double solo_s = 0.0;
  /// turnaround / solo: 1 = as good as running alone, NaN when the solo
  /// reference itself is infeasible.
  double slowdown = 0.0;
  double energy_j = 0.0;       ///< integral of granted segment power
  double final_budget_w = 0.0; ///< power share of the last segment
  int segments = 0;            ///< pipeline re-solves this job went through
  int stalls = 0;              ///< re-partitions whose share was infeasible
  int modules_lost = 0;        ///< trace-level failures that hit this job
  std::vector<hw::ModuleId> allocation;
  /// Full pipeline metrics of the job's last segment — the degenerate
  /// single-job trace pins these bit-identical to a direct pipeline run.
  core::RunMetrics final_metrics;
};

/// System-level result of one trace run.
struct TenancyResult {
  std::uint64_t trace_fingerprint = 0;
  std::vector<JobOutcome> jobs;  ///< trace order
  double makespan_s = 0.0;       ///< last finish time
  double throughput_jph = 0.0;   ///< jobs per hour of simulated time
  double mean_wait_s = 0.0;
  double mean_slowdown = 0.0;    ///< over jobs with a feasible solo reference
  /// Jain's fairness index over per-job slowdowns: 1 = perfectly fair,
  /// 1/n = one job got everything.
  double jain_fairness = 0.0;
  double energy_j = 0.0;
  /// Time-averaged fraction of the machine envelope granted to running
  /// jobs over [first arrival, makespan].
  double power_utilization = 0.0;
  int resolves = 0;  ///< pipeline segments across all jobs
};

/// Jain's fairness index (sum x)^2 / (n sum x^2) over positive entries;
/// 0 when the list is empty or all-zero.
[[nodiscard]] double jain_index(const std::vector<double>& xs);

class MachineScheduler {
 public:
  /// `pvt` is the calibrated variation table placement and partitioning
  /// read (the same artifact the pipeline calibrates budgets from).
  MachineScheduler(const cluster::Cluster& cluster,
                   std::shared_ptr<const core::Pvt> pvt,
                   TenancyOptions options = {});

  /// Runs the trace to completion and scores it. Throws InvalidArgument
  /// when a job requests more modules than the machine has, and
  /// InternalError if the simulation deadlocks (every running job stalled
  /// on an infeasible share with nothing left to arrive).
  [[nodiscard]] TenancyResult run(const TenancyTrace& trace) const;

  /// Picks `job`'s modules from `free_pool` (ascending ids) under `policy`.
  /// Exposed for tests: kVariationAware ranks the pool by each module's
  /// calibrated PVT power scale and slides a window by the workload's
  /// cpu_fraction — frequency-insensitive jobs get the power-hungry
  /// silicon, frequency-bound jobs the efficient silicon.
  [[nodiscard]] std::vector<hw::ModuleId> place(
      const std::vector<hw::ModuleId>& free_pool, const JobSpec& job,
      PlacementPolicy policy, util::SeedSequence seed) const;

  [[nodiscard]] const cluster::Cluster& cluster() const { return cluster_; }
  [[nodiscard]] const core::Pvt& pvt() const { return *pvt_; }

 private:
  const cluster::Cluster& cluster_;
  std::shared_ptr<const core::Pvt> pvt_;
  TenancyOptions options_;
};

}  // namespace vapb::tenancy
