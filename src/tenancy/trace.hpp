// TenancyTrace — the declarative spec of a multi-tenant co-scheduling
// experiment: which jobs arrive when, how many modules each wants, and how
// the MachineScheduler divides modules (placement) and the machine power
// envelope (partition) among whatever is running.
//
// The grammar mirrors FaultScenario's conventions: a small JSON form (one
// object, // and /* */ comments allowed) extended with a "jobs" array of
// flat objects, a CLI "key=value,..." shorthand with a compact job list,
// canonical serialization (parse(serialize()) reproduces the value exactly)
// and a stable non-zero fingerprint keying caches and reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vapb::tenancy {

/// How the MachineScheduler picks modules from the free pool for a job.
/// The first five route through cluster::Scheduler::allocate_from with the
/// matching AllocationPolicy; kVariationAware is the tenancy-specific
/// policy that ranks the pool by calibrated PVT power scales and hands the
/// power-hungry silicon to the least frequency-sensitive jobs.
enum class PlacementPolicy {
  kContiguous,
  kRandom,
  kStrided,
  kWorstPower,
  kBestPower,
  kVariationAware,
};

/// How the machine budget is divided across the running jobs.
enum class PartitionPolicy {
  kEqualShare,           ///< naive: budget proportional to module count only
  kDemandProportional,   ///< PMT floors + surplus proportional to demand span
  kWaterFill,            ///< floors + per-module water-filling, clamped at demand
};

/// Stable CLI/config spelling ("contiguous", ..., "variation-aware").
[[nodiscard]] std::string placement_policy_name(PlacementPolicy p);
[[nodiscard]] std::string partition_policy_name(PartitionPolicy p);

/// Inverse of the name functions. Unknown names throw InvalidArgument with
/// a did-you-mean suggestion plus every valid spelling.
[[nodiscard]] PlacementPolicy placement_policy_by_name(const std::string& name);
[[nodiscard]] PartitionPolicy partition_policy_by_name(const std::string& name);

/// Every policy, in enum order.
[[nodiscard]] std::vector<PlacementPolicy> all_placement_policies();
[[nodiscard]] std::vector<PartitionPolicy> all_partition_policies();

/// Backslash-escapes '"' and '\' for embedding in trace/campaign JSON; the
/// trace reader unescapes the same two, keeping parse(serialize()) exact
/// even when a job name contains a quote.
[[nodiscard]] std::string json_escape(const std::string& s);

/// One job of the trace: a workload, a module request (homogeneous count or
/// per-class mix) and an arrival time.
struct JobSpec {
  std::string name;      ///< unique label; parsers default empty names to "j<index>"
  std::string workload;  ///< catalog name (workloads::by_name)
  /// Homogeneous module count. Exactly one of `modules` / `mix` is set.
  std::uint64_t modules = 0;
  /// Per-class request in canonical hw::ClassMix spelling
  /// ("cpu:48,gpu:16"); empty = homogeneous count.
  std::string mix;
  double arrival_s = 0.0;  ///< nominal arrival time (scaled by arrival_scale)
  int iterations = 0;      ///< 0 = the workload's default
};

struct TenancyTrace {
  /// Master seed of every scheduler-side draw (placement forks per job).
  std::uint64_t seed = 2015;
  /// Machine power envelope, expressed per module like the campaign CLI's
  /// Cm budgets: the machine budget is budget_cm_w x cluster size.
  double budget_cm_w = 80.0;
  std::string placement = "contiguous";
  std::string partition = "equal-share";
  std::string scheme = "VaPc";  ///< registry scheme every job runs under
  /// Multiplier on every arrival_s: < 1 packs arrivals tighter (heavier
  /// contention), > 1 spreads them out.
  double arrival_scale = 1.0;
  /// Tenancy-level hard failure: this module dies at fail_time_s, forcing
  /// its job to reallocate mid-run. -1 = no failure.
  int fail_module = -1;
  double fail_time_s = 0.0;
  std::vector<JobSpec> jobs;

  /// Stable content hash over every field (jobs included); never 0.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Canonical JSON form; parse(serialize()) reproduces the value exactly.
  [[nodiscard]] std::string serialize() const;

  /// Parses the JSON grammar: one object of scalar fields plus a "jobs"
  /// array of flat job objects, with // and /* */ comments stripped first.
  /// Unknown keys throw InvalidArgument naming the valid spellings.
  static TenancyTrace parse(const std::string& json);

  /// Parses the CLI shorthand, e.g.
  ///   "seed=7,partition=water-fill,jobs=MHD:64@0|DGEMM:cpu48+gpu16@5x8"
  /// — jobs are '|'-separated workload:modules@arrival entries with an
  /// optional x<iterations> suffix; modules is a count or a '+'-joined
  /// class list (cpu48+gpu16).
  static TenancyTrace parse_kv(const std::string& spec);

  /// Throws InvalidArgument when a field is out of range, a policy name is
  /// unknown, a job requests no (or ambiguous) modules, or names collide.
  void validate() const;
};

}  // namespace vapb::tenancy
