// Minimal CSV writer for exporting experiment series (one file per figure).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace vapb::util {

/// Streams rows to a CSV file. Fields containing commas/quotes/newlines are
/// quoted per RFC 4180. The file is flushed and closed on destruction.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws vapb::Error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row; the cell count must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience overload: doubles are written with max_digits10 precision.
  void row_numeric(const std::vector<double>& cells);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  static std::string escape(const std::string& field);

  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace vapb::util
