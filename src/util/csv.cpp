#include "util/csv.hpp"

#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace vapb::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw Error("cannot open CSV file for writing: " + path);
  VAPB_REQUIRE_MSG(columns_ > 0, "CSV needs at least one column");
  row(header);
  rows_ = 0;  // header does not count
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw InvalidArgument("CSV row has " + std::to_string(cells.size()) +
                          " cells, expected " + std::to_string(columns_));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os.precision(std::numeric_limits<double>::max_digits10);
    os << v;
    text.push_back(os.str());
  }
  row(text);
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace vapb::util
