// Plain-text table rendering for benchmark and experiment reports.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace vapb::util {

/// Column-aligned ASCII table. Rows may be added as pre-formatted strings or
/// as doubles with per-call precision; a separator row draws a rule.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; returns the row index.
  std::size_t add_row();

  /// Appends one cell to the most recent row.
  void add_cell(std::string value);
  void add_cell(double value, int precision = 3);
  void add_cell(long long value);

  /// Convenience: adds a full row at once.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next row.
  void add_separator();

  /// Renders with padded columns; every row is validated against the header
  /// count (throws InvalidArgument on mismatch).
  [[nodiscard]] std::string str() const;

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // rule before row index
};

}  // namespace vapb::util
