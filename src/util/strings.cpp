#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

namespace vapb::util {

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_watts(double w) { return fmt_double(w, 1) + " W"; }
std::string fmt_ghz(double ghz) { return fmt_double(ghz, 2) + " GHz"; }
std::string fmt_seconds(double s) { return fmt_double(s, 3) + " s"; }

std::string fmt_watts(Watts w) { return fmt_watts(w.value()); }
std::string fmt_ghz(GigaHertz f) { return fmt_ghz(f.value()); }
std::string fmt_seconds(Seconds s) { return fmt_seconds(s.value()); }
std::string fmt_joules(Joules e) { return fmt_double(e.value(), 1) + " J"; }

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
      diag = up;
    }
  }
  return row[b.size()];
}

std::string nearest_name(std::string_view name,
                         const std::vector<std::string>& candidates) {
  const std::size_t budget = std::max<std::size_t>(2, name.size() / 3);
  std::string best;
  std::size_t best_d = budget + 1;
  for (const std::string& c : candidates) {
    const std::size_t d = edit_distance(name, c);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

}  // namespace vapb::util
