#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace vapb::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  VAPB_REQUIRE_MSG(!headers_.empty(), "table needs at least one column");
}

std::size_t Table::add_row() {
  rows_.emplace_back();
  return rows_.size() - 1;
}

void Table::add_cell(std::string value) {
  if (rows_.empty()) add_row();
  if (rows_.back().size() >= headers_.size()) {
    throw InvalidArgument("too many cells in table row");
  }
  rows_.back().push_back(std::move(value));
}

void Table::add_cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  add_cell(os.str());
}

void Table::add_cell(long long value) { add_cell(std::to_string(value)); }

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw InvalidArgument("row has " + std::to_string(cells.size()) +
                          " cells, table has " +
                          std::to_string(headers_.size()) + " columns");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { separators_.push_back(rows_.size()); }

std::string Table::str() const {
  for (const auto& row : rows_) {
    if (row.size() != headers_.size()) {
      throw InvalidArgument("incomplete table row: " +
                            std::to_string(row.size()) + " of " +
                            std::to_string(headers_.size()) + " cells");
    }
  }
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out = rule() + emit(headers_) + rule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) !=
        separators_.end() && r != 0) {
      out += rule();
    }
    out += emit(rows_[r]);
  }
  out += rule();
  return out;
}

void Table::print(std::ostream& os) const { os << str(); }

}  // namespace vapb::util
