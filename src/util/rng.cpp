#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace vapb::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

SeedSequence SeedSequence::fork(std::string_view name) const {
  // Mix the parent state with the name hash through SplitMix64 so sibling
  // streams are decorrelated.
  SplitMix64 sm(state_ ^ fnv1a(name));
  return SeedSequence(sm.next());
}

SeedSequence SeedSequence::fork(std::string_view name,
                                std::uint64_t index) const {
  SplitMix64 sm(state_ ^ fnv1a(name) ^ (index * 0x9e3779b97f4a7c15ULL + 1));
  return SeedSequence(sm.next());
}

double Rng::uniform() {
  // 53-bit mantissa trick: top 53 bits of a 64-bit draw.
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  VAPB_REQUIRE_MSG(n > 0, "uniform_index requires n > 0");
  // Lemire's unbiased bounded generation (rejection variant).
  std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    std::uint64_t r = gen_.next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::truncated_normal(double mean, double stddev, double lo,
                             double hi) {
  VAPB_REQUIRE_MSG(lo < hi, "truncated_normal requires lo < hi");
  // Rejection sampling; falls back to clamping after a bounded number of
  // attempts so pathological (mean far outside [lo,hi]) inputs terminate.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    double x = normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  double x = normal(mean, stddev);
  return x < lo ? lo : (x > hi ? hi : x);
}

double Rng::lognormal_median(double median, double sigma_log) {
  VAPB_REQUIRE_MSG(median > 0.0, "lognormal_median requires median > 0");
  return median * std::exp(sigma_log * normal());
}

}  // namespace vapb::util
