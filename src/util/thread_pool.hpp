// A small fixed-size thread pool with a chunked parallel_for helper.
//
// The simulator evaluates thousands of independent modules and dozens of
// experiment configurations; parallel_for is used for those embarrassingly
// parallel sweeps. Work items must not throw across the pool boundary —
// exceptions are captured and rethrown on the caller's thread.
//
// parallel_for uses self-scheduling: a bounded number of helper tasks (at
// most one per worker) claim fixed-size chunks off a shared counter, so a
// sweep over thousands of modules enqueues a handful of tasks instead of one
// closure per chunk. Completion is tracked per call — not via the pool-wide
// idle state — and the calling thread participates in executing chunks, so
// parallel_for may safely be issued concurrently from several threads and
// from inside a pool task (nested parallelism) without deadlocking.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vapb::util {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers; 0 means hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  /// Enqueues a task. Tasks run in FIFO order subject to worker availability.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw, the
  /// first captured exception is rethrown here. Must not be called from a
  /// worker thread (use parallel_for for nested fan-out instead).
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Process-wide shared pool, created on first use.
  static ThreadPool& global();

  /// Sets the worker count the global pool is created with. Takes effect
  /// only if called before the first use of global(); later calls are
  /// ignored. 0 restores the hardware_concurrency default.
  static void set_global_threads(std::size_t threads);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Runs fn(i) for i in [0, n) across the pool in chunks of `grain`
/// consecutive indices. Blocks until every index has run; rethrows the first
/// exception raised by any call (remaining chunks still execute).
/// Falls back to a serial loop for small n to avoid scheduling overhead.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 64);

/// parallel_for over the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 64);

}  // namespace vapb::util
