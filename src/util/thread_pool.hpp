// A small fixed-size thread pool with a parallel_for helper.
//
// The simulator evaluates thousands of independent modules and dozens of
// experiment configurations; parallel_for is used for those embarrassingly
// parallel sweeps. Work items must not throw across the pool boundary —
// exceptions are captured and rethrown on the caller's thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vapb::util {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers; 0 means hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  /// Enqueues a task. Tasks run in FIFO order subject to worker availability.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw, the
  /// first captured exception is rethrown here.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Process-wide shared pool, created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Runs fn(i) for i in [0, n) across the pool, in contiguous blocks.
/// Blocks until complete; rethrows the first exception raised by any call.
/// Falls back to a serial loop for small n to avoid scheduling overhead.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 64);

/// parallel_for over the global pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 64);

}  // namespace vapb::util
