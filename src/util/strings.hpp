// Small string/formatting helpers used by reports and serializers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace vapb::util {

/// printf-style double formatting with fixed precision.
std::string fmt_double(double v, int precision = 3);

/// Formats watts / gigahertz / seconds with units for report output.
std::string fmt_watts(double w);
std::string fmt_ghz(double ghz);
std::string fmt_seconds(double s);

/// Typed-quantity overloads (see util/units.hpp).
std::string fmt_watts(Watts w);
std::string fmt_ghz(GigaHertz f);
std::string fmt_seconds(Seconds s);
std::string fmt_joules(Joules e);

/// Splits on a delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Removes leading/trailing whitespace.
std::string trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace vapb::util
