// Small string/formatting helpers used by reports and serializers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace vapb::util {

/// printf-style double formatting with fixed precision.
std::string fmt_double(double v, int precision = 3);

/// Formats watts / gigahertz / seconds with units for report output.
std::string fmt_watts(double w);
std::string fmt_ghz(double ghz);
std::string fmt_seconds(double s);

/// Typed-quantity overloads (see util/units.hpp).
std::string fmt_watts(Watts w);
std::string fmt_ghz(GigaHertz f);
std::string fmt_seconds(Seconds s);
std::string fmt_joules(Joules e);

/// Splits on a delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Removes leading/trailing whitespace.
std::string trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Plain Levenshtein distance — callers hold a handful of short names, so
/// the quadratic table is trivial and exactness beats cleverness.
[[nodiscard]] std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to `name` by edit distance, or "" when nothing is
/// close enough to plausibly be a typo (distance must not exceed
/// max(2, |name| / 3)). Ties break toward the earlier candidate.
[[nodiscard]] std::string nearest_name(
    std::string_view name, const std::vector<std::string>& candidates);

}  // namespace vapb::util
