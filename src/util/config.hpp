// INI-style configuration parser, used to describe custom architectures for
// vapbctl without recompiling (sections in brackets, key = value lines, '#'
// or ';' comments).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace vapb::util {

class Config {
 public:
  /// Parses INI text. Throws InvalidArgument on malformed lines, duplicate
  /// keys within a section, or keys before any section header.
  static Config parse(const std::string& text);

  [[nodiscard]] bool has_section(const std::string& section) const;
  [[nodiscard]] bool has(const std::string& section,
                         const std::string& key) const;

  /// Required access; throws InvalidArgument when missing.
  [[nodiscard]] std::string get(const std::string& section,
                                const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& section,
                                  const std::string& key) const;
  [[nodiscard]] long get_long(const std::string& section,
                              const std::string& key) const;

  /// Optional access with fallback.
  [[nodiscard]] std::string get_or(const std::string& section,
                                   const std::string& key,
                                   const std::string& fallback) const;
  [[nodiscard]] double get_double_or(const std::string& section,
                                     const std::string& key,
                                     double fallback) const;
  [[nodiscard]] long get_long_or(const std::string& section,
                                 const std::string& key, long fallback) const;

  [[nodiscard]] std::vector<std::string> sections() const;
  [[nodiscard]] std::vector<std::string> keys(const std::string& section) const;

 private:
  // section -> key -> value; keys() preserves insertion order separately.
  std::map<std::string, std::map<std::string, std::string>> data_;
  std::map<std::string, std::vector<std::string>> key_order_;
  std::vector<std::string> section_order_;
};

}  // namespace vapb::util
