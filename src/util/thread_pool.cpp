#include "util/thread_pool.hpp"

#include <algorithm>

namespace vapb::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ && drained
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::unique_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (n == 0) return;
  if (n <= grain || pool.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t blocks =
      std::min(pool.size() * 4, (n + grain - 1) / grain);
  const std::size_t block_size = (n + blocks - 1) / blocks;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * block_size;
    const std::size_t hi = std::min(n, lo + block_size);
    if (lo >= hi) break;
    pool.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for(ThreadPool::global(), n, fn, grain);
}

}  // namespace vapb::util
