#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace vapb::util {

namespace {
std::atomic<std::size_t> g_global_threads{0};
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(g_global_threads.load());
  return pool;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  g_global_threads.store(threads);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ && drained
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::unique_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

namespace {

// Shared between the caller and the helper tasks of one parallel_for call.
// Helper tasks may still be dequeued after the call returned (when the
// caller claimed the remaining chunks itself), so the state is reference-
// counted and owns a copy of the work function.
struct ParallelForState {
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};
  std::mutex mutex;
  std::condition_variable done;
  std::size_t chunks_done = 0;     // guarded by mutex
  std::exception_ptr first_error;  // guarded by mutex

  // Claims and runs chunks until the counter is exhausted.
  void run_chunks() {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::size_t lo = c * grain;
      const std::size_t hi = std::min(n, lo + grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
      std::lock_guard lock(mutex);
      if (++chunks_done == chunks) done.notify_all();
    }
  }
};

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (n <= grain || pool.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto st = std::make_shared<ParallelForState>();
  st->n = n;
  st->grain = grain;
  st->chunks = (n + grain - 1) / grain;
  st->fn = fn;
  // The caller claims chunks too, so `chunks - 1` helpers suffice and
  // progress is guaranteed even when every worker is busy with other work
  // (e.g. a parallel_for issued from inside a pool task).
  const std::size_t helpers = std::min(pool.size(), st->chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([st] { st->run_chunks(); });
  }
  st->run_chunks();
  std::unique_lock lock(st->mutex);
  st->done.wait(lock, [&] { return st->chunks_done == st->chunks; });
  if (st->first_error) std::rethrow_exception(st->first_error);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for(ThreadPool::global(), n, fn, grain);
}

}  // namespace vapb::util
