// Deterministic random-number generation for reproducible experiments.
//
// Every stochastic component of the simulator (manufacturing-variation draws,
// sensor noise, RAPL control jitter, workload runtime noise) derives its
// stream from a named SeedSequence so that an entire campaign is reproducible
// bit-for-bit from a single master seed, independent of evaluation order and
// thread scheduling.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace vapb::util {

/// SplitMix64: used to expand seeds into generator state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
/// Satisfies the UniformRandomBitGenerator concept so it can also feed the
/// standard <random> distributions where convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 as recommended by the authors.
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Advances the state by 2^128 steps; used to derive parallel streams.
  void jump();

 private:
  std::uint64_t s_[4];
};

/// Hierarchical, order-independent seed derivation.
///
/// `SeedSequence(master).fork("hw").fork("module", 17).stream()` always yields
/// the same generator regardless of what other streams were created before.
class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t master) : state_(master) {}

  /// Derives a child sequence keyed by a component name.
  [[nodiscard]] SeedSequence fork(std::string_view name) const;

  /// Derives a child sequence keyed by a name and an index (module id, rank).
  [[nodiscard]] SeedSequence fork(std::string_view name,
                                  std::uint64_t index) const;

  /// Materializes the generator for this node of the seed tree.
  [[nodiscard]] Xoshiro256 stream() const { return Xoshiro256(state_); }

  [[nodiscard]] std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_;
};

/// Random variate helpers over Xoshiro256. We implement the distributions
/// ourselves (rather than relying on libstdc++'s) so that results are
/// identical across standard libraries.
class Rng {
 public:
  explicit Rng(Xoshiro256 gen) : gen_(gen) {}
  explicit Rng(const SeedSequence& seq) : gen_(seq.stream()) {}

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Normal truncated to [lo, hi] by rejection (lo < hi required).
  double truncated_normal(double mean, double stddev, double lo, double hi);

  /// Lognormal such that the *multiplicative* spread is exp(sigma_log).
  /// Mean of the underlying normal is chosen so the median equals `median`.
  double lognormal_median(double median, double sigma_log);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  Xoshiro256& generator() { return gen_; }

 private:
  Xoshiro256 gen_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Stable 64-bit FNV-1a hash of a string; used for stream naming.
std::uint64_t fnv1a(std::string_view s);

}  // namespace vapb::util
