// Minimal command-line argument parser for the vapbctl tool and examples.
//
// Supports subcommand-style invocations:
//   vapbctl solve --workload=MHD --modules 128 --budget-w 8960 [positional]
// Flags accept both `--name=value` and `--name value`; bare `--name` is a
// boolean switch. Unknown flags are an error (catches typos in experiment
// scripts).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vapb::util {

class CliArgs {
 public:
  /// Parses argv[1..). `allowed_flags` lists every recognized flag name
  /// (without the leading --). Throws InvalidArgument on an unknown flag or
  /// malformed input.
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& allowed_flags);

  /// Positional arguments, in order (the first is typically a subcommand).
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& flag) const;

  /// Value access; `get` throws InvalidArgument when the flag is missing,
  /// the `_or` variants return the fallback.
  [[nodiscard]] std::string get(const std::string& flag) const;
  [[nodiscard]] std::string get_or(const std::string& flag,
                                   const std::string& fallback) const;
  [[nodiscard]] double get_double_or(const std::string& flag,
                                     double fallback) const;
  [[nodiscard]] long get_long_or(const std::string& flag, long fallback) const;

  /// Names of every flag present on the command line, sorted. Lets callers
  /// with per-subcommand vocabularies re-validate after dispatch.
  [[nodiscard]] std::vector<std::string> flag_names() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace vapb::util
