#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vapb::util {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& allowed_flags) {
  auto allowed = [&](const std::string& name) {
    return std::find(allowed_flags.begin(), allowed_flags.end(), name) !=
           allowed_flags.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) throw InvalidArgument("bare '--' is not a valid flag");
    std::string name, value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      // `--name value` form: consume the next token unless it is a flag.
      if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
        value = argv[++i];
      }
    }
    if (!allowed(name)) {
      std::string msg = "unknown flag --" + name;
      const std::string suggestion = nearest_name(name, allowed_flags);
      if (!suggestion.empty()) msg += " (did you mean --" + suggestion + "?)";
      throw InvalidArgument(msg);
    }
    if (flags_.count(name)) {
      throw InvalidArgument("flag --" + name + " given twice");
    }
    flags_[name] = value;
  }
}

bool CliArgs::has(const std::string& flag) const {
  return flags_.count(flag) > 0;
}

std::vector<std::string> CliArgs::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;
}

std::string CliArgs::get(const std::string& flag) const {
  auto it = flags_.find(flag);
  if (it == flags_.end()) {
    throw InvalidArgument("missing required flag --" + flag);
  }
  return it->second;
}

std::string CliArgs::get_or(const std::string& flag,
                            const std::string& fallback) const {
  auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second;
}

double CliArgs::get_double_or(const std::string& flag, double fallback) const {
  auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw InvalidArgument("flag --" + flag + " expects a number, got '" +
                          it->second + "'");
  }
  return v;
}

long CliArgs::get_long_or(const std::string& flag, long fallback) const {
  auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw InvalidArgument("flag --" + flag + " expects an integer, got '" +
                          it->second + "'");
  }
  return v;
}

}  // namespace vapb::util
