// Deterministic chunked reductions.
//
// Floating-point addition is not associative, so the bitwise-determinism
// contract (DESIGN.md §8) forbids reductions whose association depends on
// thread count or scheduling. chunked_sum is the sanctioned pattern: partial
// sums over fixed-size chunks of consecutive indices, combined in chunk
// order — a fixed association that is independent of how (or whether) the
// chunks are evaluated in parallel. For n <= chunk the result is bit-equal
// to the plain sequential left-to-right sum, which keeps the committed
// golden digests (24-module grids) valid.
#pragma once

#include <cstddef>

namespace vapb::util {

/// Chunk width of chunked_sum. One fixed constant for the whole codebase:
/// two call sites summing the same values always agree bit-for-bit.
inline constexpr std::size_t kChunkedSumGrain = 4096;

/// Sum of fn(i) for i in [0, n) under the fixed chunked association
/// (chunk_0) + (chunk_1) + ...; each chunk is summed left to right. The
/// result is a pure function of the fn values — never of thread count or
/// evaluation order — and equals the sequential sum whenever n <= chunk.
/// fn's return type must be default-constructible to zero and support +=.
template <class Fn>
[[nodiscard]] auto chunked_sum(std::size_t n, const Fn& fn,
                               std::size_t chunk = kChunkedSumGrain) {
  using T = decltype(fn(std::size_t{0}));
  T acc{};
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = begin + chunk < n ? begin + chunk : n;
    T part{};
    for (std::size_t i = begin; i < end; ++i) part += fn(i);
    if (begin == 0) {
      acc = part;  // bit-equal to summing straight into acc
    } else {
      // vapb-lint: allow(determinism-taint): this IS the fixed association
      acc += part;
    }
  }
  return acc;
}

}  // namespace vapb::util
