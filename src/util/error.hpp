// Error types shared across the VAPB libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace vapb {

/// Base class for all errors raised by the VAPB libraries.
///
/// Every throwing API in the project documents the `Error` subclass it can
/// raise; callers that need fine-grained recovery catch the subclass, callers
/// that only need diagnostics catch `vapb::Error`.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated an API precondition (bad argument, out-of-range id, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A configuration is internally inconsistent (e.g. fmin > fmax).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// A power budget is infeasible: it cannot be met even at the lowest
/// operating point of the allocated modules. Mirrors the "-" cells of
/// Table 4 in the paper.
class InfeasibleBudget : public Error {
 public:
  explicit InfeasibleBudget(const std::string& what) : Error(what) {}
};

/// Internal invariant violation; indicates a bug in VAPB itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw InternalError(std::string("requirement failed: ") + expr + " at " +
                      file + ":" + std::to_string(line) +
                      (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace vapb

/// Invariant check that stays enabled in release builds. Use for conditions
/// whose violation would silently corrupt experiment results.
#define VAPB_REQUIRE(expr)                                              \
  do {                                                                  \
    if (!(expr)) ::vapb::detail::require_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define VAPB_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::vapb::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
