#include "util/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <ostream>

namespace vapb::util {

double monotonic_seconds() {
  // Telemetry measures real elapsed time; timings are reported for
  // observability only and never feed back into the simulation, so results
  // stay seed-deterministic.
  // vapb-lint: allow(determinism-clock): observability-only wall clock
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

void Telemetry::record_stage(std::string_view stage, double seconds) {
  auto it = stages_.find(stage);
  if (it == stages_.end()) {
    it = stages_.emplace(std::string(stage), StageStats{}).first;
  }
  StageStats& s = it->second;
  ++s.calls;
  s.total_s += seconds;
  s.max_s = std::max(s.max_s, seconds);
}

void Telemetry::add_counter(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::uint64_t{0}).first;
  }
  it->second += delta;
}

void Telemetry::merge(const Telemetry& other) {
  for (const auto& [name, s] : other.stages_) {
    auto it = stages_.find(name);
    if (it == stages_.end()) {
      stages_.emplace(name, s);
      continue;
    }
    it->second.calls += s.calls;
    it->second.total_s += s.total_s;
    it->second.max_s = std::max(it->second.max_s, s.max_s);
  }
  for (const auto& [name, n] : other.counters_) add_counter(name, n);
}

namespace {

// Stage and counter names are internal identifiers, but escape the JSON
// specials anyway so a stray name cannot corrupt the document.
void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void Telemetry::write_json(std::ostream& os) const {
  const auto flags = os.flags();
  const auto precision = os.precision();
  os << std::setprecision(17);
  os << "{\"stages\": {";
  bool first = true;
  for (const auto& [name, s] : stages_) {
    if (!first) os << ", ";
    first = false;
    write_json_string(os, name);
    os << ": {\"calls\": " << s.calls << ", \"total_s\": " << s.total_s
       << ", \"max_s\": " << s.max_s << '}';
  }
  os << "}, \"counters\": {";
  first = true;
  for (const auto& [name, n] : counters_) {
    if (!first) os << ", ";
    first = false;
    write_json_string(os, name);
    os << ": " << n;
  }
  os << "}}\n";
  os.flags(flags);
  os.precision(precision);
}

ScopedStage::ScopedStage(Telemetry& sink, std::string_view stage)
    : sink_(&sink), stage_(stage), start_s_(monotonic_seconds()) {}

ScopedStage::~ScopedStage() {
  sink_->record_stage(stage_, monotonic_seconds() - start_s_);
}

}  // namespace vapb::util
