// Strong physical-unit types for the quantities the budgeting pipeline
// trades in: power (Watts), frequency (GigaHertz), energy (Joules) and
// time (Seconds).
//
// Every quantity is a `double` wrapped in a tag type that only admits
// dimension-legal arithmetic:
//   * same-unit addition/subtraction and comparisons;
//   * scaling by a dimensionless double;
//   * same-unit division, which yields a dimensionless double;
//   * the physical cross products Watts * Seconds = Joules,
//     Joules / Seconds = Watts and Joules / Watts = Seconds.
// Anything else — most importantly watts-plus-gigahertz or
// watts-times-gigahertz — fails to compile (see
// tests/compile_fail/units_mix.cpp).
//
// Construction from a raw double is explicit (`Watts{70.0}` or the `_W`
// literal), and extraction back is explicit (`.value()`), so a unit enters
// and leaves the typed world only at visible, greppable points.
#pragma once

namespace vapb::util {

/// A dimensioned scalar; `Tag` carries the unit. See the unit aliases below.
template <class Tag>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  /// The raw magnitude in this unit (explicit exit from the typed world).
  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    v_ /= s;
    return *this;
  }

  [[nodiscard]] friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.v_ + b.v_};
  }
  [[nodiscard]] friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.v_ - b.v_};
  }
  [[nodiscard]] friend constexpr Quantity operator-(Quantity a) {
    return Quantity{-a.v_};
  }
  [[nodiscard]] friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity{a.v_ * s};
  }
  [[nodiscard]] friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity{s * a.v_};
  }
  [[nodiscard]] friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity{a.v_ / s};
  }
  /// Ratio of two same-unit quantities is dimensionless.
  [[nodiscard]] friend constexpr double operator/(Quantity a, Quantity b) {
    return a.v_ / b.v_;
  }

  friend constexpr auto operator<=>(Quantity, Quantity) = default;

 private:
  double v_ = 0.0;
};

struct WattsTag {};
struct GigaHertzTag {};
struct JoulesTag {};
struct SecondsTag {};

using Watts = Quantity<WattsTag>;
using GigaHertz = Quantity<GigaHertzTag>;
using Joules = Quantity<JoulesTag>;
using Seconds = Quantity<SecondsTag>;

// The dimension-legal cross products.
[[nodiscard]] constexpr Joules operator*(Watts p, Seconds t) {
  return Joules{p.value() * t.value()};
}
[[nodiscard]] constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
[[nodiscard]] constexpr Watts operator/(Joules e, Seconds t) {
  return Watts{e.value() / t.value()};
}
[[nodiscard]] constexpr Seconds operator/(Joules e, Watts p) {
  return Seconds{e.value() / p.value()};
}

template <class Tag>
[[nodiscard]] constexpr Quantity<Tag> abs(Quantity<Tag> q) {
  return q.value() < 0.0 ? -q : q;
}

template <class Tag>
[[nodiscard]] constexpr Quantity<Tag> min(Quantity<Tag> a, Quantity<Tag> b) {
  return b < a ? b : a;
}

template <class Tag>
[[nodiscard]] constexpr Quantity<Tag> max(Quantity<Tag> a, Quantity<Tag> b) {
  return a < b ? b : a;
}

inline namespace unit_literals {

[[nodiscard]] constexpr Watts operator""_W(long double v) {
  return Watts{static_cast<double>(v)};
}
[[nodiscard]] constexpr Watts operator""_W(unsigned long long v) {
  return Watts{static_cast<double>(v)};
}
[[nodiscard]] constexpr GigaHertz operator""_GHz(long double v) {
  return GigaHertz{static_cast<double>(v)};
}
[[nodiscard]] constexpr GigaHertz operator""_GHz(unsigned long long v) {
  return GigaHertz{static_cast<double>(v)};
}
[[nodiscard]] constexpr Joules operator""_J(long double v) {
  return Joules{static_cast<double>(v)};
}
[[nodiscard]] constexpr Joules operator""_J(unsigned long long v) {
  return Joules{static_cast<double>(v)};
}
[[nodiscard]] constexpr Seconds operator""_sec(long double v) {
  return Seconds{static_cast<double>(v)};
}
[[nodiscard]] constexpr Seconds operator""_sec(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}

}  // namespace unit_literals

}  // namespace vapb::util
