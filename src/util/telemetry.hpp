// Lightweight per-stage telemetry: named wall-clock timers and counters
// with a structured JSON sink.
//
// Telemetry is a plain value type — each pipeline run accumulates into its
// own instance and the campaign engine merges per-job instances under its
// own lock, so no synchronisation happens here. Timings are observability
// only: they never feed back into the simulation, which keeps the
// determinism contract intact (results depend only on seeds, never on the
// clock).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

namespace vapb::util {

/// Seconds on a monotonic clock with an arbitrary epoch. Only differences
/// are meaningful.
[[nodiscard]] double monotonic_seconds();

class Telemetry {
 public:
  struct StageStats {
    std::uint64_t calls = 0;
    double total_s = 0.0;
    double max_s = 0.0;
  };

  /// Folds one timed invocation of `stage` into its running stats.
  void record_stage(std::string_view stage, double seconds);

  /// Bumps the named counter by `delta` (creating it at zero first).
  void add_counter(std::string_view name, std::uint64_t delta = 1);

  /// Accumulates another instance into this one: stage stats fold together
  /// (calls and totals add, max takes the max) and counters add.
  void merge(const Telemetry& other);

  [[nodiscard]] const std::map<std::string, StageStats, std::less<>>&
  stages() const {
    return stages_;
  }
  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>&
  counters() const {
    return counters_;
  }
  [[nodiscard]] bool empty() const {
    return stages_.empty() && counters_.empty();
  }

  /// Writes `{"stages": {name: {"calls": n, "total_s": t, "max_s": m}},
  /// "counters": {name: n}}` with keys in lexicographic order, followed by
  /// a newline.
  void write_json(std::ostream& os) const;

 private:
  std::map<std::string, StageStats, std::less<>> stages_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

/// RAII stage timer: records the wall time between construction and
/// destruction under `stage` in `sink`. The sink must outlive the timer.
class ScopedStage {
 public:
  ScopedStage(Telemetry& sink, std::string_view stage);
  ~ScopedStage();

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  Telemetry* sink_;
  std::string stage_;
  double start_s_;
};

}  // namespace vapb::util
