#include "util/config.hpp"

#include <cstdlib>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vapb::util {

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream is(text);
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip comments (# or ;) and whitespace.
    auto hash = line.find_first_of("#;");
    if (hash != std::string::npos) line.erase(hash);
    std::string t = trim(line);
    if (t.empty()) continue;
    if (t.front() == '[') {
      if (t.back() != ']' || t.size() < 3) {
        throw InvalidArgument("config line " + std::to_string(lineno) +
                              ": malformed section header '" + t + "'");
      }
      section = trim(t.substr(1, t.size() - 2));
      if (!cfg.data_.count(section)) {
        cfg.data_[section] = {};
        cfg.key_order_[section] = {};
        cfg.section_order_.push_back(section);
      }
      continue;
    }
    auto eq = t.find('=');
    if (eq == std::string::npos) {
      throw InvalidArgument("config line " + std::to_string(lineno) +
                            ": expected 'key = value', got '" + t + "'");
    }
    if (section.empty()) {
      throw InvalidArgument("config line " + std::to_string(lineno) +
                            ": key before any [section]");
    }
    std::string key = trim(t.substr(0, eq));
    std::string value = trim(t.substr(eq + 1));
    if (key.empty()) {
      throw InvalidArgument("config line " + std::to_string(lineno) +
                            ": empty key");
    }
    if (cfg.data_[section].count(key)) {
      throw InvalidArgument("config line " + std::to_string(lineno) +
                            ": duplicate key '" + key + "' in [" + section +
                            "]");
    }
    cfg.data_[section][key] = value;
    cfg.key_order_[section].push_back(key);
  }
  return cfg;
}

bool Config::has_section(const std::string& section) const {
  return data_.count(section) > 0;
}

bool Config::has(const std::string& section, const std::string& key) const {
  auto it = data_.find(section);
  return it != data_.end() && it->second.count(key) > 0;
}

std::string Config::get(const std::string& section,
                        const std::string& key) const {
  auto it = data_.find(section);
  if (it == data_.end() || !it->second.count(key)) {
    throw InvalidArgument("config: missing [" + section + "] " + key);
  }
  return it->second.at(key);
}

double Config::get_double(const std::string& section,
                          const std::string& key) const {
  std::string v = get(section, key);
  char* end = nullptr;
  double x = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw InvalidArgument("config: [" + section + "] " + key +
                          " expects a number, got '" + v + "'");
  }
  return x;
}

long Config::get_long(const std::string& section,
                      const std::string& key) const {
  std::string v = get(section, key);
  char* end = nullptr;
  long x = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw InvalidArgument("config: [" + section + "] " + key +
                          " expects an integer, got '" + v + "'");
  }
  return x;
}

std::string Config::get_or(const std::string& section, const std::string& key,
                           const std::string& fallback) const {
  return has(section, key) ? get(section, key) : fallback;
}

double Config::get_double_or(const std::string& section,
                             const std::string& key, double fallback) const {
  return has(section, key) ? get_double(section, key) : fallback;
}

long Config::get_long_or(const std::string& section, const std::string& key,
                         long fallback) const {
  return has(section, key) ? get_long(section, key) : fallback;
}

std::vector<std::string> Config::sections() const { return section_order_; }

std::vector<std::string> Config::keys(const std::string& section) const {
  auto it = key_order_.find(section);
  if (it == key_order_.end()) {
    throw InvalidArgument("config: no section [" + section + "]");
  }
  return it->second;
}

}  // namespace vapb::util
