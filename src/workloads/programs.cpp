#include "workloads/programs.hpp"

#include "util/error.hpp"

namespace vapb::workloads {

std::vector<des::RankProgram> build_programs(
    const Workload& w, std::size_t nranks, int iterations,
    const ComputeTimeFn& compute_seconds) {
  if (nranks == 0) throw InvalidArgument("build_programs: nranks == 0");
  if (iterations <= 0) throw InvalidArgument("build_programs: iterations <= 0");

  auto dims = des::topology::balanced_dims_3d(nranks);
  std::vector<des::RankProgram> programs(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    auto rank = static_cast<des::RankId>(r);
    des::RankProgram& prog = programs[r];
    for (int it = 0; it < iterations; ++it) {
      prog.compute(compute_seconds(r, it));
      switch (w.comm) {
        case CommPattern::kNone:
          break;
        case CommPattern::kHalo1D:
          prog.halo_exchange(des::topology::chain_1d(rank, nranks),
                             w.halo_bytes_per_peer);
          break;
        case CommPattern::kHalo3D:
          prog.halo_exchange(
              des::topology::grid_3d(rank, dims[0], dims[1], dims[2]),
              w.halo_bytes_per_peer);
          break;
        case CommPattern::kAllreduce:
          prog.allreduce(w.allreduce_bytes);
          break;
        case CommPattern::kHalo3DWithReduce:
          prog.halo_exchange(
              des::topology::grid_3d(rank, dims[0], dims[1], dims[2]),
              w.halo_bytes_per_peer);
          if ((it + 1) % w.reduce_every == 0) {
            prog.allreduce(w.allreduce_bytes);
          }
          break;
      }
    }
  }
  return programs;
}

des::ProgramImage build_program_image(const Workload& w, std::size_t nranks,
                                      int iterations,
                                      const ComputeTimeFn& compute_seconds) {
  if (nranks == 0) throw InvalidArgument("build_programs: nranks == 0");
  if (iterations <= 0) throw InvalidArgument("build_programs: iterations <= 0");

  const bool halo = w.comm == CommPattern::kHalo1D ||
                    w.comm == CommPattern::kHalo3D ||
                    w.comm == CommPattern::kHalo3DWithReduce;
  auto dims = des::topology::balanced_dims_3d(nranks);
  des::ImageBuilder b(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    auto rank = static_cast<des::RankId>(r);
    // One topology entry covers every iteration's halo op of this rank.
    std::uint32_t topo = 0;
    if (halo) {
      topo = b.add_topology(
          w.comm == CommPattern::kHalo1D
              ? des::topology::chain_1d(rank, nranks)
              : des::topology::grid_3d(rank, dims[0], dims[1], dims[2]));
    }
    for (int it = 0; it < iterations; ++it) {
      b.compute(rank, compute_seconds(r, it), w.entropy_at(it));
      switch (w.comm) {
        case CommPattern::kNone:
          break;
        case CommPattern::kHalo1D:
        case CommPattern::kHalo3D:
          b.halo_exchange(rank, topo, w.halo_bytes_per_peer);
          break;
        case CommPattern::kAllreduce:
          b.allreduce(rank, w.allreduce_bytes);
          break;
        case CommPattern::kHalo3DWithReduce:
          b.halo_exchange(rank, topo, w.halo_bytes_per_peer);
          if ((it + 1) % w.reduce_every == 0) {
            b.allreduce(rank, w.allreduce_bytes);
          }
          break;
      }
    }
  }
  return b.build();
}

}  // namespace vapb::workloads
