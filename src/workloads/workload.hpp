// Workload model: power profile + performance model + communication pattern
// for each benchmark in the paper (Section 3.3).
#pragma once

#include <string>
#include <vector>

#include "hw/power_profile.hpp"
#include "hw/rapl.hpp"

namespace vapb::workloads {

/// Communication structure of one iteration.
enum class CommPattern {
  kNone,        ///< embarrassingly parallel; per-rank times measured directly
  kHalo1D,      ///< neighbour exchange on an open chain
  kHalo3D,      ///< neighbour exchange on an open 3-D grid (stencil codes)
  kAllreduce,   ///< global reduction every iteration (Monte Carlo stats)
  kHalo3DWithReduce,  ///< halo every iteration + allreduce every k iterations
};

struct Workload {
  std::string name;
  std::string description;

  hw::PowerProfile profile;

  // -- Performance model ----------------------------------------------------
  /// Wall time of one iteration on one rank at the nominal frequency [s].
  double iter_seconds_nominal = 1.0;
  /// Fraction of the iteration that scales as 1/frequency (the rest is
  /// memory/bandwidth time, frequency-insensitive while un-throttled).
  double cpu_fraction = 1.0;
  /// Reference frequency for iter_seconds_nominal [GHz].
  double nominal_freq_ghz = 2.7;
  /// sd of per-iteration compute-time noise (fraction). EP measures < 0.5%
  /// per-run variation in the paper.
  double runtime_noise_frac = 0.003;
  /// sd of a *persistent* per-rank efficiency factor for a given run (data
  /// placement, NUMA/OS effects): iteration noise averages out over a run,
  /// this does not. It is what keeps Vt slightly above 1 even under perfect
  /// frequency selection (Figure 8(i)).
  double per_rank_noise_frac = 0.0;

  // -- Communication --------------------------------------------------------
  CommPattern comm = CommPattern::kNone;
  double halo_bytes_per_peer = 0.0;
  double allreduce_bytes = 0.0;
  /// For kHalo3DWithReduce: allreduce every this many iterations.
  int reduce_every = 5;

  int default_iterations = 20;

  // -- Data entropy ---------------------------------------------------------
  /// Per-iteration data-entropy schedule in [0, 1], cycled over iterations
  /// (iteration i uses phase_entropy[i % size]). Dynamic power tracks the
  /// entropy of the operands flowing through the datapath (Bhalachandra et
  /// al.), with a per-device-class sensitivity
  /// (hw::ClassPowerModel::entropy_slope). Empty — the default for every
  /// catalog workload — means every phase runs at profile.data_entropy, and
  /// execution power is bit-identical to the pre-entropy model.
  std::vector<double> phase_entropy;

  /// Entropy of iteration `iteration` under the schedule (or
  /// profile.data_entropy when no schedule is set).
  [[nodiscard]] double entropy_at(int iteration) const;

  /// Iteration wall time on a module at operating point `op`.
  ///
  /// Un-throttled: t = T * (c * f_nom/f + (1 - c)) with c = cpu_fraction.
  /// Throttled (duty-cycle regime below fmin): the whole socket is gated, so
  /// the entire fmin-iteration stretches by fmin / perf_freq:
  ///   t = T(fmin) * freq_ghz / perf_freq_ghz.
  [[nodiscard]] double iter_seconds(const hw::OperatingPoint& op) const;

  /// Convenience: iteration time at a plain (un-throttled) frequency.
  [[nodiscard]] double iter_seconds_at(double f_ghz) const;
};

}  // namespace vapb::workloads
