// The benchmark catalog (paper Section 3.3) plus the *STREAM-derived
// microbenchmark used to generate the Power Variation Table.
//
// Power coefficients are calibrated against the paper's HA8K measurements
// (Figure 2: *DGEMM CPU ~100.8 W / DRAM ~12.0 W at 2.7 GHz; MHD CPU ~83.9 W /
// DRAM ~12.6 W) and the feasibility boundaries of Table 4.
#pragma once

#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace vapb::workloads {

/// HPCC *DGEMM: compute-bound MKL matrix multiply, 12,288^2, AVX.
const Workload& dgemm();

/// HPCC *STREAM: sustainable memory bandwidth, 24 GB vectors, AVX + OpenMP.
const Workload& stream();

/// NPB EP (Class D): embarrassingly parallel Gaussian variates; near-zero
/// per-run noise, working set in cache. The Section-4 study benchmark.
const Workload& ep();

/// NPB BT-MZ (Class E): block tri-diagonal multizone solver. The workload
/// with the worst PVT-based power prediction (~10%, Section 5.3).
const Workload& bt();

/// NPB SP-MZ (Class E): scalar penta-diagonal multizone solver.
const Workload& sp();

/// 3-D magneto-hydro-dynamics, Modified Leapfrog; MPI_Sendrecv neighbour
/// exchange every timestep (the synchronization study of Figure 3).
const Workload& mhd();

/// mVMC-mini (FIBER): variational Monte Carlo, allreduce-dominated sync.
const Workload& mvmc();

/// The microbenchmark run on every module at boot to build the PVT
/// (the paper uses *STREAM; sensitivities are 1 by construction).
const Workload& pvt_microbench();

/// Alternative PVT microbenchmarks for the Section-6.1 discussion
/// (compute-bound and mixed variants).
const Workload& pvt_microbench_compute();
const Workload& pvt_microbench_mixed();

/// The six evaluation benchmarks, in Figure 7 order.
std::vector<const Workload*> evaluation_suite();

/// Lookup by name; throws InvalidArgument for unknown names.
const Workload& by_name(const std::string& name);

}  // namespace vapb::workloads
