#include "workloads/catalog.hpp"

#include "util/error.hpp"

namespace vapb::workloads {

namespace {

Workload make_dgemm() {
  Workload w;
  w.name = "*DGEMM";
  w.description = "HPCC DGEMM, thread-parallel MKL, 12288x12288";
  w.profile.name = w.name;
  // CPU ~100.8 W at 2.7 GHz, nearly all dynamic (AVX FMA); DRAM ~12 W.
  w.profile.cpu_static_w = 8.5;
  w.profile.cpu_dyn_w_per_ghz = 34.3;   // ~101.1 W at 2.7, ~49.7 W at 1.2
  w.profile.dram_static_w = 9.8;
  w.profile.dram_dyn_w_per_ghz = 0.85;  // ~12.1 W at 2.7, ~10.8 W at 1.2
  w.profile.cpu_sensitivity = 1.02;
  w.profile.dram_sensitivity = 0.95;
  w.profile.idiosyncrasy_sd = 0.012;
  w.iter_seconds_nominal = 6.0;
  w.cpu_fraction = 0.97;
  w.runtime_noise_frac = 0.003;
  w.per_rank_noise_frac = 0.015;
  w.comm = CommPattern::kNone;
  w.default_iterations = 10;
  return w;
}

Workload make_stream() {
  Workload w;
  w.name = "*STREAM";
  w.description = "HPCC STREAM triad, AVX + OpenMP, 24 GB vectors";
  w.profile.name = w.name;
  // High DRAM power (~31 W at 2.7 GHz) — the component Naive's TDP-based
  // model underestimates, producing Figure 9's budget violation.
  w.profile.cpu_static_w = 27.3;
  w.profile.cpu_dyn_w_per_ghz = 18.4;   // ~77 W at 2.7, ~49.4 W at 1.2
  w.profile.dram_static_w = 14.0;
  w.profile.dram_dyn_w_per_ghz = 6.3;   // ~31 W at 2.7, ~21.6 W at 1.2
  w.profile.cpu_sensitivity = 1.0;  // the PVT microbenchmark itself
  w.profile.dram_sensitivity = 1.0;
  w.profile.idiosyncrasy_sd = 0.0;
  w.iter_seconds_nominal = 4.0;
  w.cpu_fraction = 0.45;
  w.runtime_noise_frac = 0.006;
  w.per_rank_noise_frac = 0.02;
  w.comm = CommPattern::kNone;
  w.default_iterations = 12;
  return w;
}

Workload make_ep() {
  Workload w;
  w.name = "NPB-EP";
  w.description = "NPB EP Class D, Marsaglia polar Gaussian variates";
  w.profile.name = w.name;
  // Cache-resident, CPU-bound, modest power.
  w.profile.cpu_static_w = 4.5;
  w.profile.cpu_dyn_w_per_ghz = 22.0;
  w.profile.dram_static_w = 1.6;
  w.profile.dram_dyn_w_per_ghz = 0.7;
  w.profile.cpu_sensitivity = 1.02;
  w.profile.dram_sensitivity = 0.8;
  w.profile.idiosyncrasy_sd = 0.008;
  w.iter_seconds_nominal = 3.0;
  w.cpu_fraction = 0.985;
  w.runtime_noise_frac = 0.002;  // paper: < 0.5% over 15 runs
  w.per_rank_noise_frac = 0.003;
  w.comm = CommPattern::kNone;
  w.default_iterations = 10;
  return w;
}

Workload make_bt() {
  Workload w;
  w.name = "NPB-BT";
  w.description = "NPB BT-MZ Class E, block tri-diagonal multizone";
  w.profile.name = w.name;
  w.profile.cpu_static_w = 11.0;
  w.profile.cpu_dyn_w_per_ghz = 25.6;   // ~80.1 W at 2.7, ~41.7 W at 1.2
  w.profile.dram_static_w = 2.5;
  w.profile.dram_dyn_w_per_ghz = 2.2;   // ~8.4 W at 2.7
  // BT exercises the die very differently from *STREAM: the PVT mispredicts
  // it by ~10% (Section 5.3).
  w.profile.cpu_sensitivity = 0.93;
  w.profile.dram_sensitivity = 1.1;
  w.profile.idiosyncrasy_sd = 0.05;
  w.iter_seconds_nominal = 5.0;
  w.cpu_fraction = 0.75;
  w.runtime_noise_frac = 0.005;
  w.per_rank_noise_frac = 0.012;
  w.comm = CommPattern::kHalo3DWithReduce;
  w.halo_bytes_per_peer = 2.0e6;
  w.allreduce_bytes = 64.0;
  w.reduce_every = 5;
  w.default_iterations = 20;
  return w;
}

Workload make_sp() {
  Workload w;
  w.name = "NPB-SP";
  w.description = "NPB SP-MZ Class E, scalar penta-diagonal multizone";
  w.profile.name = w.name;
  w.profile.cpu_static_w = 13.5;
  w.profile.cpu_dyn_w_per_ghz = 23.3;   // ~76.4 W at 2.7, ~41.5 W at 1.2
  w.profile.dram_static_w = 2.8;
  w.profile.dram_dyn_w_per_ghz = 2.9;   // ~10.6 W at 2.7, ~6.3 W at 1.2
  w.profile.cpu_sensitivity = 0.97;
  w.profile.dram_sensitivity = 1.05;
  w.profile.idiosyncrasy_sd = 0.025;
  w.iter_seconds_nominal = 4.5;
  w.cpu_fraction = 0.70;
  w.runtime_noise_frac = 0.005;
  w.per_rank_noise_frac = 0.012;
  w.comm = CommPattern::kHalo3DWithReduce;
  w.halo_bytes_per_peer = 2.4e6;
  w.allreduce_bytes = 64.0;
  w.reduce_every = 5;
  w.default_iterations = 20;
  return w;
}

Workload make_mhd() {
  Workload w;
  w.name = "MHD";
  w.description = "3-D magneto-hydro-dynamics, Modified Leapfrog";
  w.profile.name = w.name;
  // CPU ~83.9 W, DRAM ~12.6 W at 2.7 GHz (Figure 2).
  w.profile.cpu_static_w = 13.9;
  w.profile.cpu_dyn_w_per_ghz = 25.9;
  w.profile.dram_static_w = 5.0;
  w.profile.dram_dyn_w_per_ghz = 2.8;
  w.profile.cpu_sensitivity = 0.98;
  w.profile.dram_sensitivity = 1.0;
  w.profile.idiosyncrasy_sd = 0.015;
  w.iter_seconds_nominal = 2.5;
  w.cpu_fraction = 0.80;
  w.runtime_noise_frac = 0.004;
  w.per_rank_noise_frac = 0.01;
  w.comm = CommPattern::kHalo3D;
  w.halo_bytes_per_peer = 4.0e6;
  w.default_iterations = 30;
  return w;
}

Workload make_mvmc() {
  Workload w;
  w.name = "mVMC";
  w.description = "mVMC-mini (FIBER), variational Monte Carlo";
  w.profile.name = w.name;
  w.profile.cpu_static_w = 17.5;
  w.profile.cpu_dyn_w_per_ghz = 23.0;   // ~79.6 W at 2.7, ~45.1 W at 1.2
  w.profile.dram_static_w = 4.5;
  w.profile.dram_dyn_w_per_ghz = 1.6;   // ~8.8 W at 2.7, ~6.4 W at 1.2
  w.profile.cpu_sensitivity = 1.03;
  w.profile.dram_sensitivity = 0.9;
  w.profile.idiosyncrasy_sd = 0.02;
  w.iter_seconds_nominal = 3.5;
  w.cpu_fraction = 0.85;
  w.runtime_noise_frac = 0.01;  // Monte Carlo sampling noise
  w.per_rank_noise_frac = 0.012;
  w.comm = CommPattern::kAllreduce;
  w.allreduce_bytes = 4096.0;
  w.default_iterations = 20;
  return w;
}

Workload make_pvt_micro() {
  Workload w = make_stream();
  w.name = "pvt-star-stream";
  w.description = "*STREAM microbenchmark used to generate the PVT";
  w.profile.name = w.name;
  w.default_iterations = 4;
  return w;
}

Workload make_pvt_micro_compute() {
  Workload w = make_dgemm();
  w.name = "pvt-compute";
  w.description = "compute-bound PVT microbenchmark (DGEMM kernel)";
  w.profile.name = w.name;
  w.profile.cpu_sensitivity = 1.0;
  w.profile.dram_sensitivity = 1.0;
  w.profile.idiosyncrasy_sd = 0.0;
  w.default_iterations = 4;
  return w;
}

Workload make_pvt_micro_mixed() {
  Workload w;
  w.name = "pvt-mixed";
  w.description = "mixed compute/bandwidth PVT microbenchmark";
  w.profile.name = w.name;
  w.profile.cpu_static_w = 10.0;
  w.profile.cpu_dyn_w_per_ghz = 31.0;
  w.profile.dram_static_w = 7.0;
  w.profile.dram_dyn_w_per_ghz = 5.0;
  w.profile.cpu_sensitivity = 1.0;
  w.profile.dram_sensitivity = 1.0;
  w.profile.idiosyncrasy_sd = 0.0;
  w.iter_seconds_nominal = 3.0;
  w.cpu_fraction = 0.7;
  w.comm = CommPattern::kNone;
  w.default_iterations = 4;
  return w;
}

}  // namespace

const Workload& dgemm() {
  static const Workload w = make_dgemm();
  return w;
}
const Workload& stream() {
  static const Workload w = make_stream();
  return w;
}
const Workload& ep() {
  static const Workload w = make_ep();
  return w;
}
const Workload& bt() {
  static const Workload w = make_bt();
  return w;
}
const Workload& sp() {
  static const Workload w = make_sp();
  return w;
}
const Workload& mhd() {
  static const Workload w = make_mhd();
  return w;
}
const Workload& mvmc() {
  static const Workload w = make_mvmc();
  return w;
}
const Workload& pvt_microbench() {
  static const Workload w = make_pvt_micro();
  return w;
}
const Workload& pvt_microbench_compute() {
  static const Workload w = make_pvt_micro_compute();
  return w;
}
const Workload& pvt_microbench_mixed() {
  static const Workload w = make_pvt_micro_mixed();
  return w;
}

std::vector<const Workload*> evaluation_suite() {
  return {&dgemm(), &stream(), &mhd(), &bt(), &sp(), &mvmc()};
}

const Workload& by_name(const std::string& name) {
  for (const Workload* w : evaluation_suite()) {
    if (w->name == name) return *w;
  }
  if (name == ep().name) return ep();
  if (name == pvt_microbench().name) return pvt_microbench();
  if (name == pvt_microbench_compute().name) return pvt_microbench_compute();
  if (name == pvt_microbench_mixed().name) return pvt_microbench_mixed();
  throw InvalidArgument("unknown workload: " + name);
}

}  // namespace vapb::workloads
