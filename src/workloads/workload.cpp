#include "workloads/workload.hpp"

#include "util/error.hpp"

namespace vapb::workloads {

double Workload::iter_seconds_at(double f_ghz) const {
  VAPB_REQUIRE_MSG(f_ghz > 0.0, "iter_seconds_at: frequency must be positive");
  return iter_seconds_nominal *
         (cpu_fraction * nominal_freq_ghz / f_ghz + (1.0 - cpu_fraction));
}

double Workload::iter_seconds(const hw::OperatingPoint& op) const {
  VAPB_REQUIRE_MSG(op.perf_freq_ghz > 0.0,
                   "iter_seconds: operating point has zero perf frequency");
  if (!op.throttled) return iter_seconds_at(op.perf_freq_ghz);
  // Duty-cycle regime: clock gating stalls compute *and* memory phases.
  return iter_seconds_at(op.freq_ghz) * (op.freq_ghz / op.perf_freq_ghz);
}

}  // namespace vapb::workloads
