#include "workloads/workload.hpp"

#include "util/error.hpp"

namespace vapb::workloads {

double Workload::iter_seconds_at(double f_ghz) const {
  VAPB_REQUIRE_MSG(f_ghz > 0.0, "iter_seconds_at: frequency must be positive");
  return iter_seconds_nominal *
         (cpu_fraction * nominal_freq_ghz / f_ghz + (1.0 - cpu_fraction));
}

double Workload::entropy_at(int iteration) const {
  if (phase_entropy.empty()) return profile.data_entropy;
  VAPB_REQUIRE_MSG(iteration >= 0, "entropy_at: negative iteration");
  const double e = phase_entropy[static_cast<std::size_t>(iteration) %
                                 phase_entropy.size()];
  VAPB_REQUIRE_MSG(e >= 0.0 && e <= 1.0,
                   "phase_entropy values must lie in [0, 1]");
  return e;
}

double Workload::iter_seconds(const hw::OperatingPoint& op) const {
  VAPB_REQUIRE_MSG(op.perf_freq_ghz > 0.0,
                   "iter_seconds: operating point has zero perf frequency");
  if (!op.throttled) return iter_seconds_at(op.perf_freq_ghz);
  // Duty-cycle regime: clock gating stalls compute *and* memory phases.
  return iter_seconds_at(op.freq_ghz) * (op.freq_ghz / op.perf_freq_ghz);
}

}  // namespace vapb::workloads
