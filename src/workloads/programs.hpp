// Builds the per-rank DES programs for a workload: the iteration loop with
// the workload's communication pattern, with compute durations supplied by
// the caller (who knows each module's operating point and jitter model).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "des/program.hpp"
#include "workloads/workload.hpp"

namespace vapb::workloads {

/// compute_seconds(rank, iteration) -> duration of that rank's compute phase.
using ComputeTimeFn = std::function<double(std::size_t rank, int iteration)>;

/// Generates `nranks` SPMD programs running `iterations` iterations of `w`.
/// Throws InvalidArgument for nranks == 0 or iterations <= 0.
std::vector<des::RankProgram> build_programs(const Workload& w,
                                             std::size_t nranks,
                                             int iterations,
                                             const ComputeTimeFn& compute_seconds);

}  // namespace vapb::workloads
