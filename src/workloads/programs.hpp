// Builds the per-rank DES programs for a workload: the iteration loop with
// the workload's communication pattern, with compute durations supplied by
// the caller (who knows each module's operating point and jitter model).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "des/image.hpp"
#include "des/program.hpp"
#include "workloads/workload.hpp"

namespace vapb::workloads {

/// compute_seconds(rank, iteration) -> duration of that rank's compute phase.
using ComputeTimeFn = std::function<double(std::size_t rank, int iteration)>;

/// Generates `nranks` SPMD programs running `iterations` iterations of `w`.
/// Throws InvalidArgument for nranks == 0 or iterations <= 0.
std::vector<des::RankProgram> build_programs(const Workload& w,
                                             std::size_t nranks,
                                             int iterations,
                                             const ComputeTimeFn& compute_seconds);

/// Same programs as build_programs, compiled directly into image form: each
/// rank's stencil neighbourhood is registered as one topology entry and
/// referenced by every iteration's halo op, instead of materializing a peer
/// vector per iteration. Calls compute_seconds in the same (rank-major,
/// iteration-minor) order as build_programs and yields a bit-identical
/// simulation.
des::ProgramImage build_program_image(const Workload& w, std::size_t nranks,
                                      int iterations,
                                      const ComputeTimeFn& compute_seconds);

}  // namespace vapb::workloads
