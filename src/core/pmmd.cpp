#include "core/pmmd.hpp"

#include "util/error.hpp"

namespace vapb::core {

PmmdSession::PmmdSession(const PmmdPlan& plan, std::vector<hw::Rapl>& rapls,
                         std::vector<hw::CpufreqGovernor>& governors)
    : rapls_(rapls), governors_(governors) {
  if (plan.settings.size() != rapls.size() ||
      plan.settings.size() != governors.size()) {
    throw InvalidArgument("PmmdSession: controller count mismatch");
  }
  for (std::size_t i = 0; i < plan.settings.size(); ++i) {
    const PmmdSetting& s = plan.settings[i];
    if (plan.enforcement == Enforcement::kPowerCap) {
      if (!s.cpu_cap_w) {
        throw InvalidArgument("PmmdSession: power-cap plan missing cap");
      }
      rapls[i].set_cpu_limit(*s.cpu_cap_w);
    } else {
      if (!s.freq_ghz) {
        throw InvalidArgument("PmmdSession: freq-select plan missing freq");
      }
      governors[i].set_frequency(*s.freq_ghz);
    }
  }
}

PmmdSession::~PmmdSession() {
  for (auto& r : rapls_) r.clear_cpu_limit();
  for (auto& g : governors_) g.clear();
}

}  // namespace vapb::core
