#include "core/pipeline.hpp"

#include "util/error.hpp"

namespace vapb::core {

namespace {

template <typename Stage, typename Fn>
void run_stage(RunContext& ctx, const std::shared_ptr<const Stage>& stage,
               const char* name, Fn invoke) {
  if (!stage) return;
  if (ctx.telemetry != nullptr) {
    util::ScopedStage timer(*ctx.telemetry, name);
    invoke(*stage);
  } else {
    invoke(*stage);
  }
}

}  // namespace

RunMetrics run_pipeline(const SchemeDefinition& def, RunContext& ctx) {
  if (ctx.cluster == nullptr || ctx.workload == nullptr) {
    throw InvalidArgument("run_pipeline: context needs cluster and workload");
  }
  run_stage(ctx, def.calibration, "calibrate",
            [&](const CalibrationStage& s) { s.calibrate(ctx); });
  run_stage(ctx, def.power_model, "model",
            [&](const PowerModelStage& s) { s.model(ctx); });
  run_stage(ctx, def.budget_solve, "solve",
            [&](const BudgetSolveStage& s) { s.solve(ctx); });
  run_stage(ctx, def.enforcement_stage, "enforce",
            [&](const EnforcementStage& s) { s.enforce(ctx); });
  run_stage(ctx, def.execution, "execute",
            [&](const ExecutionStage& s) { s.execute(ctx); });
  return ctx.metrics;
}

}  // namespace vapb::core
