#include "core/pmt.hpp"

#include <cmath>
#include <utility>

#include "hw/ladder.hpp"
#include "util/error.hpp"
#include "util/reduce.hpp"
#include "util/thread_pool.hpp"

namespace vapb::core {

Pmt::Pmt(std::vector<PmtEntry> entries, util::GigaHertz fmax_ghz,
         util::GigaHertz fmin_ghz)
    : entries_(std::move(entries)), fmax_(fmax_ghz), fmin_(fmin_ghz) {
  VAPB_REQUIRE_MSG(!entries_.empty(), "PMT needs at least one entry");
  if (!(fmin_ > util::GigaHertz{0.0}) || !(fmax_ >= fmin_)) {
    throw ConfigError("Pmt: need 0 < fmin <= fmax");
  }
  class_freq_.fill(ClassFreqRange{fmax_, fmin_});
}

Pmt::Pmt(std::vector<PmtEntry> entries, util::GigaHertz fmax_ghz,
         util::GigaHertz fmin_ghz, std::vector<hw::DeviceClass> classes,
         std::array<ClassFreqRange, hw::kDeviceClassCount> class_freq)
    : Pmt(std::move(entries), fmax_ghz, fmin_ghz) {
  if (classes.size() != entries_.size()) {
    throw ConfigError("Pmt: classes must align with entries");
  }
  for (hw::DeviceClass c : classes) {
    const ClassFreqRange& r = class_freq[hw::device_class_index(c)];
    if (!(r.fmin_ghz > util::GigaHertz{0.0}) || !(r.fmax_ghz >= r.fmin_ghz)) {
      throw ConfigError(std::string("Pmt: class ") + hw::device_class_name(c) +
                        " needs 0 < fmin <= fmax");
    }
  }
  classes_ = std::move(classes);
  class_freq_ = class_freq;
}

const PmtEntry& Pmt::entry(std::size_t k) const {
  if (k >= entries_.size()) {
    throw InvalidArgument("Pmt: entry index out of range");
  }
  return entries_[k];
}

util::Watts Pmt::total_min_w() const {
  return util::chunked_sum(entries_.size(), [&](std::size_t i) {
    return entries_[i].module_min_w();
  });
}

util::Watts Pmt::total_max_w() const {
  return util::chunked_sum(entries_.size(), [&](std::size_t i) {
    return entries_[i].module_max_w();
  });
}

Pmt calibrate_pmt(const Pvt& pvt, const TestRunResult& test,
                  std::span<const hw::ModuleId> allocation,
                  const hw::FrequencyLadder& ladder) {
  if (allocation.empty()) throw InvalidArgument("calibrate_pmt: no modules");
  const PvtEntry& k = pvt.entry(test.module);
  VAPB_REQUIRE_MSG(k.cpu_max > 0 && k.dram_max > 0 && k.cpu_min > 0 &&
                       k.dram_min > 0,
                   "test module has non-positive PVT scales");
  // Fleet-average estimates from the single test module (Figure 6). The PVT
  // scales are dimensionless, so the estimates stay in watts.
  const util::Watts avg_cpu_max = test.cpu_max_w / k.cpu_max;
  const util::Watts avg_dram_max = test.dram_max_w / k.dram_max;
  const util::Watts avg_cpu_min = test.cpu_min_w / k.cpu_min;
  const util::Watts avg_dram_min = test.dram_min_w / k.dram_min;

  // Element-wise scale-out over the allocation — bit-identical at any
  // thread count.
  std::vector<PmtEntry> entries(allocation.size());
  util::parallel_for(
      allocation.size(),
      [&](std::size_t i) {
        const PvtEntry& s = pvt.entry(allocation[i]);
        entries[i] = PmtEntry{avg_cpu_max * s.cpu_max,
                              avg_dram_max * s.dram_max,
                              avg_cpu_min * s.cpu_min,
                              avg_dram_min * s.dram_min};
      },
      1024);
  return Pmt(std::move(entries), ladder.fmax_freq(), ladder.fmin_freq());
}

namespace {

/// Per-entry classes and per-class frequency ranges for a table over
/// `allocation` of a mixed fleet.
struct ClassLayout {
  std::vector<hw::DeviceClass> classes;
  std::array<ClassFreqRange, hw::kDeviceClassCount> freq{};
};

ClassLayout class_layout(const cluster::Cluster& cluster,
                         std::span<const hw::ModuleId> allocation) {
  ClassLayout l;
  l.classes.reserve(allocation.size());
  for (hw::ModuleId id : allocation) {
    l.classes.push_back(cluster.device_class(id));
  }
  for (hw::DeviceClass c : hw::all_device_classes()) {
    const hw::FrequencyLadder ladder = cluster.class_spec(c).ladder;
    l.freq[hw::device_class_index(c)] =
        ClassFreqRange{ladder.fmax_freq(), ladder.fmin_freq()};
  }
  return l;
}

}  // namespace

Pmt calibrate_pmt_per_class(const cluster::Cluster& cluster, const Pvt& pvt,
                            const ClassTestRuns& class_tests,
                            std::span<const hw::ModuleId> allocation) {
  if (allocation.empty()) {
    throw InvalidArgument("calibrate_pmt_per_class: no modules");
  }
  ClassLayout layout = class_layout(cluster, allocation);

  // Fleet-average estimates, one set per class present (Figure 6 applied
  // class by class: the PVT scales are relative to the class average, so
  // dividing a class's test run by its test module's scales recovers that
  // class's average curve).
  struct Avg {
    util::Watts cpu_max{}, dram_max{}, cpu_min{}, dram_min{};
    bool present = false;
  };
  std::array<Avg, hw::kDeviceClassCount> avg{};
  for (std::size_t i = 0; i < allocation.size(); ++i) {
    Avg& a = avg[hw::device_class_index(layout.classes[i])];
    if (a.present) continue;
    const hw::DeviceClass c = layout.classes[i];
    const std::shared_ptr<const TestRunResult>& test =
        class_tests[hw::device_class_index(c)];
    if (!test) {
      throw InvalidArgument(
          std::string("calibrate_pmt_per_class: allocation contains ") +
          hw::device_class_name(c) + " modules but no test run for the class");
    }
    const PvtEntry& k = pvt.entry(test->module);
    VAPB_REQUIRE_MSG(k.cpu_max > 0 && k.dram_max > 0 && k.cpu_min > 0 &&
                         k.dram_min > 0,
                     "test module has non-positive PVT scales");
    a.cpu_max = test->cpu_max_w / k.cpu_max;
    a.dram_max = test->dram_max_w / k.dram_max;
    a.cpu_min = test->cpu_min_w / k.cpu_min;
    a.dram_min = test->dram_min_w / k.dram_min;
    a.present = true;
  }

  std::vector<PmtEntry> entries(allocation.size());
  util::parallel_for(
      allocation.size(),
      [&](std::size_t i) {
        const Avg& a = avg[hw::device_class_index(layout.classes[i])];
        const PvtEntry& s = pvt.entry(allocation[i]);
        entries[i] = PmtEntry{a.cpu_max * s.cpu_max, a.dram_max * s.dram_max,
                              a.cpu_min * s.cpu_min, a.dram_min * s.dram_min};
      },
      1024);
  const auto& ladder = cluster.spec().ladder;
  return Pmt(std::move(entries), ladder.fmax_freq(), ladder.fmin_freq(),
             std::move(layout.classes), layout.freq);
}

Pmt oracle_pmt(const cluster::Cluster& cluster,
               std::span<const hw::ModuleId> allocation,
               const workloads::Workload& app, util::SeedSequence seed) {
  if (allocation.empty()) throw InvalidArgument("oracle_pmt: no modules");
  const auto& ladder = cluster.spec().ladder;
  std::vector<PmtEntry> entries(allocation.size());
  util::parallel_for(allocation.size(), [&](std::size_t i) {
    TestRunResult r = single_module_test_run(cluster, allocation[i], app,
                                             seed.fork("oracle", i));
    entries[i] = PmtEntry{r.cpu_max_w, r.dram_max_w, r.cpu_min_w, r.dram_min_w};
  });
  if (cluster.heterogeneous()) {
    // The measurements already ran each module on its own ladder
    // (single_module_test_run uses the module's fmax/fmin); carry the class
    // layout so frequency derivation is per class too.
    ClassLayout layout = class_layout(cluster, allocation);
    return Pmt(std::move(entries), ladder.fmax_freq(), ladder.fmin_freq(),
               std::move(layout.classes), layout.freq);
  }
  return Pmt(std::move(entries), ladder.fmax_freq(), ladder.fmin_freq());
}

Pmt constant_pmt(PmtEntry entry, std::size_t n,
                 const hw::FrequencyLadder& ladder) {
  if (n == 0) throw InvalidArgument("constant_pmt: n == 0");
  return Pmt(std::vector<PmtEntry>(n, entry), ladder.fmax_freq(),
             ladder.fmin_freq());
}

Pmt averaged_pmt(const Pmt& pmt) {
  const std::vector<PmtEntry>& es = pmt.entries();
  if (pmt.heterogeneous()) {
    // Class-wise collapse: variation-unaware *within* a class, but a GPU's
    // average is still a GPU's — averaging a 5x-power device into the CPU
    // mean would not be a power model at all.
    std::array<PmtEntry, hw::kDeviceClassCount> sum{};
    std::array<double, hw::kDeviceClassCount> count{};
    for (std::size_t i = 0; i < es.size(); ++i) {
      const std::size_t c = hw::device_class_index(pmt.device_class(i));
      sum[c].cpu_max_w += es[i].cpu_max_w;
      sum[c].dram_max_w += es[i].dram_max_w;
      sum[c].cpu_min_w += es[i].cpu_min_w;
      sum[c].dram_min_w += es[i].dram_min_w;
      count[c] += 1.0;
    }
    std::vector<PmtEntry> entries(es.size());
    std::vector<hw::DeviceClass> classes(es.size());
    std::array<ClassFreqRange, hw::kDeviceClassCount> freq{};
    for (hw::DeviceClass c : hw::all_device_classes()) {
      freq[hw::device_class_index(c)] = pmt.class_range(c);
    }
    for (std::size_t i = 0; i < es.size(); ++i) {
      const std::size_t c = hw::device_class_index(pmt.device_class(i));
      entries[i] = PmtEntry{sum[c].cpu_max_w / count[c],
                            sum[c].dram_max_w / count[c],
                            sum[c].cpu_min_w / count[c],
                            sum[c].dram_min_w / count[c]};
      classes[i] = pmt.device_class(i);
    }
    return Pmt(std::move(entries), pmt.fmax_ghz(), pmt.fmin_ghz(),
               std::move(classes), freq);
  }
  PmtEntry avg{};
  avg.cpu_max_w = util::chunked_sum(
      es.size(), [&](std::size_t i) { return es[i].cpu_max_w; });
  avg.dram_max_w = util::chunked_sum(
      es.size(), [&](std::size_t i) { return es[i].dram_max_w; });
  avg.cpu_min_w = util::chunked_sum(
      es.size(), [&](std::size_t i) { return es[i].cpu_min_w; });
  avg.dram_min_w = util::chunked_sum(
      es.size(), [&](std::size_t i) { return es[i].dram_min_w; });
  const auto n = static_cast<double>(pmt.size());
  avg.cpu_max_w /= n;
  avg.dram_max_w /= n;
  avg.cpu_min_w /= n;
  avg.dram_min_w /= n;
  return Pmt(std::vector<PmtEntry>(pmt.size(), avg), pmt.fmax_ghz(),
             pmt.fmin_ghz());
}

double pmt_prediction_error(const Pmt& predicted, const Pmt& truth) {
  if (predicted.size() != truth.size()) {
    throw InvalidArgument("pmt_prediction_error: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const util::Watts t = truth.entry(i).module_max_w();
    VAPB_REQUIRE_MSG(t > util::Watts{0.0}, "oracle PMT has non-positive power");
    sum += std::abs((predicted.entry(i).module_max_w() - t) / t);
  }
  return sum / static_cast<double>(truth.size());
}

}  // namespace vapb::core
