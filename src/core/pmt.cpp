#include "core/pmt.hpp"

#include <cmath>
#include <utility>

#include "hw/ladder.hpp"
#include "util/error.hpp"
#include "util/reduce.hpp"
#include "util/thread_pool.hpp"

namespace vapb::core {

Pmt::Pmt(std::vector<PmtEntry> entries, util::GigaHertz fmax_ghz,
         util::GigaHertz fmin_ghz)
    : entries_(std::move(entries)), fmax_(fmax_ghz), fmin_(fmin_ghz) {
  VAPB_REQUIRE_MSG(!entries_.empty(), "PMT needs at least one entry");
  if (!(fmin_ > util::GigaHertz{0.0}) || !(fmax_ >= fmin_)) {
    throw ConfigError("Pmt: need 0 < fmin <= fmax");
  }
}

const PmtEntry& Pmt::entry(std::size_t k) const {
  if (k >= entries_.size()) {
    throw InvalidArgument("Pmt: entry index out of range");
  }
  return entries_[k];
}

util::Watts Pmt::total_min_w() const {
  return util::chunked_sum(entries_.size(), [&](std::size_t i) {
    return entries_[i].module_min_w();
  });
}

util::Watts Pmt::total_max_w() const {
  return util::chunked_sum(entries_.size(), [&](std::size_t i) {
    return entries_[i].module_max_w();
  });
}

Pmt calibrate_pmt(const Pvt& pvt, const TestRunResult& test,
                  std::span<const hw::ModuleId> allocation,
                  const hw::FrequencyLadder& ladder) {
  if (allocation.empty()) throw InvalidArgument("calibrate_pmt: no modules");
  const PvtEntry& k = pvt.entry(test.module);
  VAPB_REQUIRE_MSG(k.cpu_max > 0 && k.dram_max > 0 && k.cpu_min > 0 &&
                       k.dram_min > 0,
                   "test module has non-positive PVT scales");
  // Fleet-average estimates from the single test module (Figure 6). The PVT
  // scales are dimensionless, so the estimates stay in watts.
  const util::Watts avg_cpu_max = test.cpu_max_w / k.cpu_max;
  const util::Watts avg_dram_max = test.dram_max_w / k.dram_max;
  const util::Watts avg_cpu_min = test.cpu_min_w / k.cpu_min;
  const util::Watts avg_dram_min = test.dram_min_w / k.dram_min;

  // Element-wise scale-out over the allocation — bit-identical at any
  // thread count.
  std::vector<PmtEntry> entries(allocation.size());
  util::parallel_for(
      allocation.size(),
      [&](std::size_t i) {
        const PvtEntry& s = pvt.entry(allocation[i]);
        entries[i] = PmtEntry{avg_cpu_max * s.cpu_max,
                              avg_dram_max * s.dram_max,
                              avg_cpu_min * s.cpu_min,
                              avg_dram_min * s.dram_min};
      },
      1024);
  return Pmt(std::move(entries), ladder.fmax_freq(), ladder.fmin_freq());
}

Pmt oracle_pmt(const cluster::Cluster& cluster,
               std::span<const hw::ModuleId> allocation,
               const workloads::Workload& app, util::SeedSequence seed) {
  if (allocation.empty()) throw InvalidArgument("oracle_pmt: no modules");
  const auto& ladder = cluster.spec().ladder;
  std::vector<PmtEntry> entries(allocation.size());
  util::parallel_for(allocation.size(), [&](std::size_t i) {
    TestRunResult r = single_module_test_run(cluster, allocation[i], app,
                                             seed.fork("oracle", i));
    entries[i] = PmtEntry{r.cpu_max_w, r.dram_max_w, r.cpu_min_w, r.dram_min_w};
  });
  return Pmt(std::move(entries), ladder.fmax_freq(), ladder.fmin_freq());
}

Pmt constant_pmt(PmtEntry entry, std::size_t n,
                 const hw::FrequencyLadder& ladder) {
  if (n == 0) throw InvalidArgument("constant_pmt: n == 0");
  return Pmt(std::vector<PmtEntry>(n, entry), ladder.fmax_freq(),
             ladder.fmin_freq());
}

Pmt averaged_pmt(const Pmt& pmt) {
  const std::vector<PmtEntry>& es = pmt.entries();
  PmtEntry avg{};
  avg.cpu_max_w = util::chunked_sum(
      es.size(), [&](std::size_t i) { return es[i].cpu_max_w; });
  avg.dram_max_w = util::chunked_sum(
      es.size(), [&](std::size_t i) { return es[i].dram_max_w; });
  avg.cpu_min_w = util::chunked_sum(
      es.size(), [&](std::size_t i) { return es[i].cpu_min_w; });
  avg.dram_min_w = util::chunked_sum(
      es.size(), [&](std::size_t i) { return es[i].dram_min_w; });
  const auto n = static_cast<double>(pmt.size());
  avg.cpu_max_w /= n;
  avg.dram_max_w /= n;
  avg.cpu_min_w /= n;
  avg.dram_min_w /= n;
  return Pmt(std::vector<PmtEntry>(pmt.size(), avg), pmt.fmax_ghz(),
             pmt.fmin_ghz());
}

double pmt_prediction_error(const Pmt& predicted, const Pmt& truth) {
  if (predicted.size() != truth.size()) {
    throw InvalidArgument("pmt_prediction_error: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const util::Watts t = truth.entry(i).module_max_w();
    VAPB_REQUIRE_MSG(t > util::Watts{0.0}, "oracle PMT has non-positive power");
    sum += std::abs((predicted.entry(i).module_max_w() - t) / t);
  }
  return sum / static_cast<double>(truth.size());
}

}  // namespace vapb::core
