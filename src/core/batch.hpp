// Batch-queue simulation under a system-wide power budget.
//
// The paper's conclusion points at "analyzing multiple applications under a
// system-level power constraint and optimizing for overall system
// throughput". This module simulates a power-constrained batch system: jobs
// arrive over time, a FCFS queue (with optional backfill) admits them when
// both free modules and power headroom exist, each admitted job receives an
// application-level budget and runs under a chosen budgeting scheme, and the
// simulator reports per-job waits, system makespan, throughput and power
// utilization. Comparing schemes on the same job stream quantifies what
// variation awareness buys at the *system* level, not just per job.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/pvt.hpp"
#include "core/runner.hpp"

namespace vapb::core {

struct BatchJob {
  std::string name;
  const workloads::Workload* app = nullptr;
  std::size_t modules = 0;
  double arrival_s = 0.0;
  int iterations = 0;  ///< 0 = the workload's default
};

struct BatchConfig {
  SchemeKind scheme = SchemeKind::kVaFs;
  /// When the queue head does not fit, later jobs that do fit may start
  /// (EASY-style backfill without reservations).
  bool backfill = true;
};

struct JobOutcome {
  BatchJob job;
  bool completed = false;   ///< false: never admitted (malformed/impossible)
  std::string reject_reason;
  double start_s = 0.0;
  double finish_s = 0.0;
  double budget_w = 0.0;
  double alpha = 0.0;

  [[nodiscard]] double wait_s() const { return start_s - job.arrival_s; }
  [[nodiscard]] double runtime_s() const { return finish_s - start_s; }
};

struct BatchResult {
  std::vector<JobOutcome> jobs;     ///< in input order
  double makespan_s = 0.0;          ///< last completion time
  double mean_wait_s = 0.0;         ///< over completed jobs
  double throughput_jobs_per_hour = 0.0;
  /// Time-averaged committed power divided by the system budget.
  double power_utilization = 0.0;
};

class BatchSimulator {
 public:
  /// Throws InvalidArgument for a non-positive budget or a PVT that does not
  /// cover the cluster.
  BatchSimulator(const cluster::Cluster& cluster, const Pvt& pvt,
                 double system_budget_w, RunConfig run_config = {});

  /// Simulates the stream to completion. A job that can never start (more
  /// modules than the machine, or an fmin floor above the whole budget) is
  /// marked completed=false with a reason; everything else eventually runs.
  [[nodiscard]] BatchResult run(const std::vector<BatchJob>& jobs,
                                const BatchConfig& config,
                                util::SeedSequence seed) const;

 private:
  const cluster::Cluster& cluster_;
  const Pvt& pvt_;
  double system_budget_w_;
  RunConfig run_config_;
};

}  // namespace vapb::core
