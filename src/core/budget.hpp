// The variation-aware power budgeting solve (paper Section 5.1, Eq. 1-9).
//
// Given an application's PMT over its allocated modules and an application-
// level power budget, find the largest common frequency coefficient alpha in
// [0, 1] whose total predicted module power fits the budget, then derive each
// module's individual power allocation and CPU cap.
// The hierarchical variant (solve_budget_tree) runs the same Eq. 6 solve
// against a cluster::PowerTree: every interior node's capacity is honored by
// water-filling — solve per subtree, clamp children whose demand exceeds
// what their enclosure can deliver, and re-solve the siblings over the
// reclaimed surplus. The flat solve is exactly the 1-level degenerate case.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/power_tree.hpp"
#include "core/pmt.hpp"
#include "util/units.hpp"

namespace vapb::core {

/// Per-module output of the budgeting solve.
struct ModuleBudget {
  util::Watts module_w{};   ///< P^module_i (Eq. 7)
  util::Watts cpu_cap_w{};  ///< P^cpu_i (Eq. 8-9)
  util::Watts dram_w{};     ///< predicted DRAM power at alpha
};

struct BudgetResult {
  /// False when, according to this PMT, even alpha = 0 (fmin everywhere)
  /// exceeds the budget. The solve still produces best-effort allocations at
  /// alpha = 0 — a scheme with a pessimistic table must still run (the paper
  /// ran every non-"-" cell); whether a cell is *truly* inoperable is decided
  /// against ground truth by Campaign::classify.
  bool fits_at_fmin = true;

  /// False when the budget exceeds the fmax requirement, i.e. the power
  /// constraint is not binding (alpha clamped to 1) — Table 4's "•" cells.
  bool constrained = false;

  double alpha = 0.0;  ///< common coefficient (clamped to [0, 1])
  util::GigaHertz target_freq_ghz{};  ///< f = alpha (fmax - fmin) + fmin (Eq. 1)
  util::Watts predicted_total_w{};    ///< sum of module allocations

  std::vector<ModuleBudget> allocations;  ///< aligned with the PMT entries
};

/// Structure-of-arrays view of a PMT: the four affine coefficients of every
/// module's power model as flat arrays (minimum and fmax-fmin span, CPU and
/// DRAM), plus the per-module min/max totals. This is the layout the solve's
/// hot loops stream — plain contiguous doubles the compiler auto-vectorizes —
/// gathered element-wise (bit-identical at any thread count).
struct PmtSoA {
  std::vector<double> cpu_min_w;
  std::vector<double> cpu_span_w;   ///< cpu_max - cpu_min
  std::vector<double> dram_min_w;
  std::vector<double> dram_span_w;  ///< dram_max - dram_min
  std::vector<double> module_min_w;
  std::vector<double> module_max_w;
  /// Device class per entry, raw hw::DeviceClass bytes (all-kCpu for a
  /// homogeneous table). The watt columns already price each class — the
  /// alpha solve never branches on this — but per-class reductions
  /// (reporting, misallocation analysis) stream it alongside.
  std::vector<std::uint8_t> device_class;

  static PmtSoA gather(const Pmt& pmt);

  [[nodiscard]] std::size_t size() const { return cpu_min_w.size(); }
};

/// Solves Eq. 6 with alpha clamped to [0, 1] and derives per-module
/// allocations (Eq. 7-9). Never throws for tight budgets — inspect
/// `fits_at_fmin`. Equivalent to solve_budget_tree over the 1-level tree.
BudgetResult solve_budget(const Pmt& pmt, util::Watts budget_w);

/// Hierarchical Eq. 6 solve over a power tree. Top-down from the root, every
/// node's grant is distributed to its children by the flat alpha solve over
/// the children's aggregate tables; a child whose share would exceed its own
/// usable capacity (its capacity_w, or the sum of what its subtree can
/// absorb) is clamped there and the surplus re-solved over its siblings, so
/// the final allocation respects every level's constraint. Leaf groups then
/// fill per-module allocations exactly as the flat solve does. With a
/// 1-level tree this is bit-identical to solve_budget. `fits_at_fmin` is
/// false when any leaf group's grant lands below its fmin floor (its
/// allocations are then scaled best-effort, as in the flat solve);
/// `constrained` is true when the root solve clamps alpha below 1 or any
/// interior capacity forced a clamp. `alpha` / `target_freq_ghz` report the
/// root-level coefficient.
BudgetResult solve_budget_tree(const Pmt& pmt, const cluster::PowerTree& tree,
                               util::Watts budget_w);

/// Like solve_budget but throws InfeasibleBudget when the budget cannot be
/// met at fmin. For callers that treat infeasibility as an error (e.g. a
/// resource manager rejecting a job).
BudgetResult solve_budget_strict(const Pmt& pmt, util::Watts budget_w);

}  // namespace vapb::core
