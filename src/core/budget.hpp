// The variation-aware power budgeting solve (paper Section 5.1, Eq. 1-9).
//
// Given an application's PMT over its allocated modules and an application-
// level power budget, find the largest common frequency coefficient alpha in
// [0, 1] whose total predicted module power fits the budget, then derive each
// module's individual power allocation and CPU cap.
#pragma once

#include <vector>

#include "core/pmt.hpp"
#include "util/units.hpp"

namespace vapb::core {

/// Per-module output of the budgeting solve.
struct ModuleBudget {
  util::Watts module_w{};   ///< P^module_i (Eq. 7)
  util::Watts cpu_cap_w{};  ///< P^cpu_i (Eq. 8-9)
  util::Watts dram_w{};     ///< predicted DRAM power at alpha
};

struct BudgetResult {
  /// False when, according to this PMT, even alpha = 0 (fmin everywhere)
  /// exceeds the budget. The solve still produces best-effort allocations at
  /// alpha = 0 — a scheme with a pessimistic table must still run (the paper
  /// ran every non-"-" cell); whether a cell is *truly* inoperable is decided
  /// against ground truth by Campaign::classify.
  bool fits_at_fmin = true;

  /// False when the budget exceeds the fmax requirement, i.e. the power
  /// constraint is not binding (alpha clamped to 1) — Table 4's "•" cells.
  bool constrained = false;

  double alpha = 0.0;  ///< common coefficient (clamped to [0, 1])
  util::GigaHertz target_freq_ghz{};  ///< f = alpha (fmax - fmin) + fmin (Eq. 1)
  util::Watts predicted_total_w{};    ///< sum of module allocations

  std::vector<ModuleBudget> allocations;  ///< aligned with the PMT entries
};

/// Solves Eq. 6 with alpha clamped to [0, 1] and derives per-module
/// allocations (Eq. 7-9). Never throws for tight budgets — inspect
/// `fits_at_fmin`.
BudgetResult solve_budget(const Pmt& pmt, util::Watts budget_w);

/// Like solve_budget but throws InfeasibleBudget when the budget cannot be
/// met at fmin. For callers that treat infeasibility as an error (e.g. a
/// resource manager rejecting a job).
BudgetResult solve_budget_strict(const Pmt& pmt, util::Watts budget_w);

}  // namespace vapb::core
