#include "core/resource_manager.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vapb::core {

ResourceManager::ResourceManager(const cluster::Cluster& cluster,
                                 const Pvt& pvt, double system_budget_w)
    : cluster_(cluster), pvt_(pvt), system_budget_w_(system_budget_w) {
  if (system_budget_w_ <= 0.0) {
    throw InvalidArgument("ResourceManager: budget must be positive");
  }
  if (pvt_.size() != cluster_.size()) {
    throw InvalidArgument("ResourceManager: PVT covers " +
                          std::to_string(pvt_.size()) + " modules, cluster has " +
                          std::to_string(cluster_.size()));
  }
}

std::optional<std::vector<hw::ModuleId>> ResourceManager::take_contiguous(
    std::vector<bool>& used, std::size_t count) const {
  const std::size_t n = used.size();
  std::size_t run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    run = used[i] ? 0 : run + 1;
    if (run == count) {
      std::vector<hw::ModuleId> out;
      out.reserve(count);
      for (std::size_t k = i + 1 - count; k <= i; ++k) {
        used[k] = true;
        out.push_back(static_cast<hw::ModuleId>(k));
      }
      return out;
    }
  }
  return std::nullopt;
}

ScheduleResult ResourceManager::schedule(
    const std::vector<JobRequest>& requests, PowerSharePolicy policy,
    util::SeedSequence seed) const {
  ScheduleResult result;
  std::vector<bool> used(cluster_.size(), false);

  // Pass 1: allocate modules and calibrate each admissible job's PMT.
  struct Pending {
    JobRequest req;
    std::vector<hw::ModuleId> alloc;
    Pmt pmt;
    double floor_w;   // fmin requirement
    double demand_w;  // fmax requirement
  };
  std::vector<Pending> pending;
  for (const JobRequest& req : requests) {
    if (req.app == nullptr || req.modules == 0) {
      result.rejected.emplace_back(req, "malformed request");
      continue;
    }
    auto alloc = take_contiguous(used, req.modules);
    if (!alloc) {
      result.rejected.emplace_back(req, "not enough free modules");
      continue;
    }
    TestRunResult test = single_module_test_run(
        cluster_, alloc->front(), *req.app, seed.fork("rm-test", pending.size()));
    Pmt pmt = calibrate_pmt(pvt_, test, *alloc, cluster_.spec().ladder);
    double floor = pmt.total_min_w().value();
    double demand = pmt.total_max_w().value();
    pending.push_back(Pending{req, std::move(*alloc), std::move(pmt), floor,
                              demand});
  }

  // Pass 2: admission by fmin floor, in order.
  double committed_floor = 0.0;
  std::vector<Pending> admitted;
  for (Pending& p : pending) {
    if (committed_floor + p.floor_w > system_budget_w_) {
      for (auto id : p.alloc) used[id] = false;  // release the block
      result.rejected.emplace_back(
          p.req, "insufficient power: fmin floor " +
                     util::fmt_watts(p.floor_w) + " does not fit");
      continue;
    }
    committed_floor += p.floor_w;
    admitted.push_back(std::move(p));
  }
  if (admitted.empty()) return result;

  // Pass 3: split the budget.
  std::size_t total_modules = 0;
  double total_demand = 0.0, total_floor = 0.0;
  for (const Pending& p : admitted) {
    total_modules += p.alloc.size();
    total_demand += p.demand_w;
    total_floor += p.floor_w;
  }
  std::vector<double> budgets(admitted.size(), 0.0);
  switch (policy) {
    case PowerSharePolicy::kUniformPerModule:
      for (std::size_t k = 0; k < admitted.size(); ++k) {
        budgets[k] = system_budget_w_ *
                     static_cast<double>(admitted[k].alloc.size()) /
                     static_cast<double>(total_modules);
      }
      break;
    case PowerSharePolicy::kProportionalDemand:
      for (std::size_t k = 0; k < admitted.size(); ++k) {
        budgets[k] = system_budget_w_ * admitted[k].demand_w / total_demand;
      }
      break;
    case PowerSharePolicy::kFminFirstThenDemand: {
      double spare = system_budget_w_ - total_floor;
      double headroom = std::max(1e-9, total_demand - total_floor);
      for (std::size_t k = 0; k < admitted.size(); ++k) {
        budgets[k] = admitted[k].floor_w +
                     spare * (admitted[k].demand_w - admitted[k].floor_w) /
                         headroom;
      }
      break;
    }
  }

  // Clamp: never below the floor, never above the demand; return any excess
  // to a second proportional round so the budget is not wasted.
  double excess = 0.0;
  for (std::size_t k = 0; k < admitted.size(); ++k) {
    if (budgets[k] < admitted[k].floor_w) {
      excess -= admitted[k].floor_w - budgets[k];
      budgets[k] = admitted[k].floor_w;
    } else if (budgets[k] > admitted[k].demand_w) {
      excess += budgets[k] - admitted[k].demand_w;
      budgets[k] = admitted[k].demand_w;
    }
  }
  if (excess > 0.0) {
    for (std::size_t k = 0; k < admitted.size() && excess > 1e-9; ++k) {
      double room = admitted[k].demand_w - budgets[k];
      double add = std::min(room, excess);
      budgets[k] += add;
      excess -= add;
    }
  }
  // A negative excess means floors exceeded some share; the admission pass
  // guarantees the floors themselves fit, so shrink over-floor grants.
  if (excess < 0.0) {
    for (std::size_t k = 0; k < admitted.size() && excess < -1e-9; ++k) {
      double room = budgets[k] - admitted[k].floor_w;
      double cut = std::min(room, -excess);
      budgets[k] -= cut;
      excess += cut;
    }
  }

  // Pass 4: hand each job to the budgeting solve.
  for (std::size_t k = 0; k < admitted.size(); ++k) {
    Pending& p = admitted[k];
    JobGrant grant{std::move(p.req), std::move(p.alloc), budgets[k],
                   solve_budget(p.pmt, util::Watts{budgets[k]}),
                   std::move(p.pmt)};
    result.power_committed_w += grant.budget_w;
    result.granted.push_back(std::move(grant));
  }
  VAPB_REQUIRE_MSG(result.power_committed_w <= system_budget_w_ * (1 + 1e-9),
                   "resource manager overcommitted the system budget");
  return result;
}

}  // namespace vapb::core
