#include "core/batch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "util/error.hpp"
#include "util/reduce.hpp"

namespace vapb::core {

namespace {

/// Running-job bookkeeping inside the event loop.
struct Running {
  std::size_t job_index;
  std::vector<hw::ModuleId> alloc;
  double budget_w;
  double finish_s;
};

std::optional<std::vector<hw::ModuleId>> take_contiguous(
    std::vector<bool>& used, std::size_t count) {
  std::size_t run = 0;
  for (std::size_t i = 0; i < used.size(); ++i) {
    run = used[i] ? 0 : run + 1;
    if (run == count) {
      std::vector<hw::ModuleId> out;
      out.reserve(count);
      for (std::size_t k = i + 1 - count; k <= i; ++k) {
        used[k] = true;
        out.push_back(static_cast<hw::ModuleId>(k));
      }
      return out;
    }
  }
  return std::nullopt;
}

}  // namespace

BatchSimulator::BatchSimulator(const cluster::Cluster& cluster, const Pvt& pvt,
                               double system_budget_w, RunConfig run_config)
    : cluster_(cluster),
      pvt_(pvt),
      system_budget_w_(system_budget_w),
      run_config_(run_config) {
  if (system_budget_w_ <= 0.0) {
    throw InvalidArgument("BatchSimulator: budget must be positive");
  }
  if (pvt_.size() != cluster_.size()) {
    throw InvalidArgument("BatchSimulator: PVT does not cover the cluster");
  }
}

BatchResult BatchSimulator::run(const std::vector<BatchJob>& jobs,
                                const BatchConfig& config,
                                util::SeedSequence seed) const {
  BatchResult result;
  result.jobs.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) result.jobs[i].job = jobs[i];

  // Arrival order (stable for equal arrival times).
  std::vector<std::size_t> pending_order(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) pending_order[i] = i;
  std::stable_sort(pending_order.begin(), pending_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return jobs[a].arrival_s < jobs[b].arrival_s;
                   });

  std::vector<bool> used(cluster_.size(), false);
  double committed_w = 0.0;
  std::vector<Running> running;
  std::vector<std::size_t> queue;  // arrived, not yet started
  std::size_t next_arrival = 0;
  double now = 0.0;
  double power_time_integral_j = 0.0;
  double last_event = 0.0;

  // Screen out jobs that can never start.
  auto screen = [&](std::size_t j) -> bool {
    const BatchJob& job = jobs[j];
    if (job.app == nullptr || job.modules == 0 ||
        job.modules > cluster_.size()) {
      result.jobs[j].reject_reason = "impossible request";
      return false;
    }
    return true;
  };

  // Tries to start job j at `now`; returns true on success.
  auto try_start = [&](std::size_t j) -> bool {
    const BatchJob& job = jobs[j];
    std::vector<bool> trial = used;
    auto alloc = take_contiguous(trial, job.modules);
    if (!alloc) return false;

    TestRunResult test = single_module_test_run(
        cluster_, alloc->front(), *job.app, seed.fork("batch-test", j));
    Pmt pmt = calibrate_pmt(pvt_, test, *alloc, cluster_.spec().ladder);
    const util::Watts available{system_budget_w_ - committed_w};
    if (pmt.total_min_w() > available) return false;  // wait for power
    const util::Watts grant = util::min(pmt.total_max_w(), available);

    RunConfig cfg = run_config_;
    if (job.iterations > 0) cfg.iterations = job.iterations;
    Runner runner(cluster_, *alloc, cfg);
    Pmt scheme_table =
        scheme_pmt(config.scheme, cluster_, *alloc, *job.app, pvt_, test,
                   seed.fork("batch-scheme", j));
    BudgetResult solved = solve_budget(scheme_table, grant);
    RunMetrics metrics =
        runner.run_budgeted(*job.app, enforcement_of(config.scheme), solved,
                            scheme_name(config.scheme), grant.value());

    used = trial;
    committed_w += grant.value();
    running.push_back(Running{j, std::move(*alloc), grant.value(),
                              now + metrics.makespan_s});
    JobOutcome& out = result.jobs[j];
    out.completed = true;
    out.start_s = now;
    out.finish_s = now + metrics.makespan_s;
    out.budget_w = grant.value();
    out.alpha = metrics.alpha;
    return true;
  };

  auto advance_accounting = [&](double t) {
    power_time_integral_j += committed_w * (t - last_event);
    last_event = t;
  };

  std::size_t screened_out = 0;
  for (;;) {
    // Start whatever fits from the queue (FCFS head, then backfill).
    bool started = true;
    while (started) {
      started = false;
      for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        if (try_start(queue[qi])) {
          queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(qi));
          started = true;
          break;
        }
        if (!config.backfill) break;  // strict FCFS: only the head may start
      }
    }

    // Next event: arrival or completion.
    double next_completion = std::numeric_limits<double>::infinity();
    for (const Running& r : running) {
      next_completion = std::min(next_completion, r.finish_s);
    }
    double next_arrival_t = next_arrival < pending_order.size()
                                ? jobs[pending_order[next_arrival]].arrival_s
                                : std::numeric_limits<double>::infinity();
    if (!std::isfinite(next_completion) && !std::isfinite(next_arrival_t)) {
      break;  // drained
    }
    if (next_arrival_t <= next_completion) {
      now = std::max(now, next_arrival_t);
      advance_accounting(now);
      std::size_t j = pending_order[next_arrival++];
      if (screen(j)) {
        queue.push_back(j);
      } else {
        ++screened_out;
      }
    } else {
      now = next_completion;
      advance_accounting(now);
      for (std::size_t ri = 0; ri < running.size();) {
        if (running[ri].finish_s <= now + 1e-12) {
          for (auto id : running[ri].alloc) used[id] = false;
          committed_w -= running[ri].budget_w;
          running.erase(running.begin() + static_cast<std::ptrdiff_t>(ri));
        } else {
          ++ri;
        }
      }
    }
    // A queued job whose fmin floor exceeds the *whole* budget will never
    // start; drop it to guarantee termination.
    for (std::size_t qi = 0; qi < queue.size();) {
      const BatchJob& job = jobs[queue[qi]];
      TestRunResult test =
          single_module_test_run(cluster_, 0, *job.app,
                                 seed.fork("batch-screen", queue[qi]));
      std::vector<hw::ModuleId> probe(job.modules);
      for (std::size_t k = 0; k < job.modules; ++k) {
        probe[k] = static_cast<hw::ModuleId>(k);
      }
      Pmt pmt = calibrate_pmt(pvt_, test, probe, cluster_.spec().ladder);
      if (pmt.total_min_w() > util::Watts{system_budget_w_}) {
        result.jobs[queue[qi]].reject_reason =
            "fmin floor exceeds the system budget";
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(qi));
        ++screened_out;
      } else {
        ++qi;
      }
    }
  }

  double completed = 0.0;
  for (const JobOutcome& out : result.jobs) {
    if (!out.completed) continue;
    completed += 1.0;
    result.makespan_s = std::max(result.makespan_s, out.finish_s);
  }
  // Incomplete jobs contribute an exact 0.0, so the chunked sum stays
  // bit-equal to accumulating only the completed subset in job order.
  const double wait_sum =
      util::chunked_sum(result.jobs.size(), [&](std::size_t i) {
        return result.jobs[i].completed ? result.jobs[i].wait_s() : 0.0;
      });
  if (completed > 0.0) {
    result.mean_wait_s = wait_sum / completed;
    if (result.makespan_s > 0.0) {
      result.throughput_jobs_per_hour =
          completed / result.makespan_s * 3600.0;
      result.power_utilization =
          power_time_integral_j / (system_budget_w_ * result.makespan_s);
    }
  }
  return result;
}

}  // namespace vapb::core
