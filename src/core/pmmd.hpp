// Power Measurement and Management Directives (PMMDs).
//
// The paper instruments applications (via TAU) with directives placed just
// after MPI_Init and just before MPI_Finalize that delimit the region of
// interest and apply/release the module-level power settings. This is the
// analogous programmatic surface: a plan of per-module settings plus an RAII
// session that applies them to the hardware controls on entry and restores
// the defaults on exit.
#pragma once

#include <optional>
#include <vector>

#include "core/schemes.hpp"
#include "hw/cpufreq.hpp"
#include "hw/rapl.hpp"
#include "util/units.hpp"

namespace vapb::core {

/// One module's power-management setting.
struct PmmdSetting {
  hw::ModuleId module = 0;
  /// Set for power-capping schemes.
  std::optional<util::Watts> cpu_cap_w;
  /// Set for frequency-selection schemes.
  std::optional<util::GigaHertz> freq_ghz;
};

struct PmmdPlan {
  Enforcement enforcement = Enforcement::kPowerCap;
  std::vector<PmmdSetting> settings;
};

/// RAII region: applies the plan's settings to the per-module controllers on
/// construction (the "just after MPI_Init" directive) and clears them on
/// destruction (the "just before MPI_Finalize" directive).
///
/// `rapls` and `governors` are indexed in the same order as plan.settings.
/// Throws InvalidArgument on size mismatch or when a setting is missing the
/// field its enforcement requires.
class PmmdSession {
 public:
  PmmdSession(const PmmdPlan& plan, std::vector<hw::Rapl>& rapls,
              std::vector<hw::CpufreqGovernor>& governors);
  ~PmmdSession();

  PmmdSession(const PmmdSession&) = delete;
  PmmdSession& operator=(const PmmdSession&) = delete;

 private:
  std::vector<hw::Rapl>& rapls_;
  std::vector<hw::CpufreqGovernor>& governors_;
};

}  // namespace vapb::core
