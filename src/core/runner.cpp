#include "core/runner.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "core/pipeline.hpp"
#include "core/scheme_registry.hpp"
#include "core/stages.hpp"
#include "stats/variation.hpp"
#include "util/error.hpp"
#include "util/reduce.hpp"
#include "util/thread_pool.hpp"

namespace vapb::core {

namespace {

std::vector<double> collect(const std::vector<ModuleOutcome>& mods,
                            double (*f)(const ModuleOutcome&)) {
  std::vector<double> out;
  out.reserve(mods.size());
  for (const auto& m : mods) out.push_back(f(m));
  return out;
}

}  // namespace

double RunMetrics::vp() const {
  return stats::worst_case_ratio(module_powers_w());
}

double RunMetrics::vf() const {
  return stats::worst_case_ratio(perf_freqs_ghz());
}

double RunMetrics::vt_raw() const {
  return stats::worst_case_ratio(des.finish_times());
}

const std::vector<double>& RunMetrics::module_powers_w() const {
  if (module_powers_cache_.size() != modules.size()) {
    module_powers_cache_ = collect(
        modules, +[](const ModuleOutcome& m) { return m.op.module_w(); });
  }
  return module_powers_cache_;
}

std::vector<double> RunMetrics::cpu_powers_w() const {
  return collect(modules, +[](const ModuleOutcome& m) { return m.op.cpu_w; });
}

std::vector<double> RunMetrics::dram_powers_w() const {
  return collect(modules, +[](const ModuleOutcome& m) { return m.op.dram_w; });
}

std::vector<double> RunMetrics::perf_freqs_ghz() const {
  return collect(modules,
                 +[](const ModuleOutcome& m) { return m.op.perf_freq_ghz; });
}

Runner::Runner(const cluster::Cluster& cluster,
               std::vector<hw::ModuleId> allocation, RunConfig config)
    : cluster_(cluster),
      allocation_(std::move(allocation)),
      config_(config) {
  if (allocation_.empty()) throw InvalidArgument("Runner: empty allocation");
  std::set<hw::ModuleId> unique;
  for (auto id : allocation_) {
    static_cast<void>(cluster_.module(id));  // validates range
    if (!unique.insert(id).second) {
      // A duplicate would silently double-count power and run two ranks on
      // one socket.
      throw InvalidArgument("Runner: module " + std::to_string(id) +
                            " appears twice in the allocation");
    }
  }
}

RunContext Runner::make_context(const workloads::Workload& w,
                                const std::string& scheme,
                                double budget_w) const {
  RunContext ctx;
  ctx.cluster = &cluster_;
  ctx.runner = this;
  ctx.allocation = allocation_;
  ctx.workload = &w;
  ctx.scheme = scheme;
  ctx.budget_w = budget_w;
  ctx.tree = config_.tree;
  ctx.telemetry = config_.telemetry;
  ctx.fault = config_.fault;
  return ctx;
}

RunMetrics Runner::run_uncapped(const workloads::Workload& w) const {
  SchemeDefinition def;
  def.name = "Uncapped";
  def.enforcement_stage = std::make_shared<UncappedEnforcementStage>();
  def.execution = std::make_shared<DesExecutionStage>();
  RunContext ctx = make_context(w, "Uncapped", 0.0);
  return run_pipeline(def, ctx);
}

util::SeedSequence Runner::scheme_seed(const cluster::Cluster& cluster,
                                       const workloads::Workload& w,
                                       const std::string& scheme) {
  return cluster.seed().fork(w.name).fork(scheme);
}

util::SeedSequence Runner::scheme_seed(const cluster::Cluster& cluster,
                                       const workloads::Workload& w,
                                       SchemeKind scheme) {
  return scheme_seed(cluster, w, scheme_name(scheme));
}

RunMetrics Runner::run_scheme(const workloads::Workload& w,
                              const std::string& scheme, double budget_w,
                              const Pvt& pvt, const TestRunResult& test) const {
  SchemeDefinition def = SchemeRegistry::global().get(scheme);
  RunContext ctx = make_context(w, scheme, budget_w);
  ctx.seed = scheme_seed(cluster_, w, scheme);
  // Non-owning views: the caller's artifacts outlive the pipeline run, and
  // a provided artifact makes the calibration stage a no-op for it.
  ctx.pvt = std::shared_ptr<const Pvt>(std::shared_ptr<const Pvt>(), &pvt);
  ctx.test = std::shared_ptr<const TestRunResult>(
      std::shared_ptr<const TestRunResult>(), &test);
  return run_pipeline(def, ctx);
}

RunMetrics Runner::run_scheme(const workloads::Workload& w, SchemeKind scheme,
                              double budget_w, const Pvt& pvt,
                              const TestRunResult& test) const {
  return run_scheme(w, scheme_name(scheme), budget_w, pvt, test);
}

RunMetrics Runner::run_budgeted(const workloads::Workload& w,
                                Enforcement enforcement,
                                const BudgetResult& budget,
                                const std::string& label,
                                double budget_w) const {
  SchemeDefinition def;
  def.name = label;
  def.enforcement = enforcement;
  def.budget_solve = std::make_shared<FixedBudgetStage>(budget);
  def.enforcement_stage = std::make_shared<PmmdEnforcementStage>(enforcement);
  def.execution = std::make_shared<DesExecutionStage>();
  RunContext ctx = make_context(w, label, budget_w);
  return run_pipeline(def, ctx);
}

RunMetrics Runner::execute(const workloads::Workload& w,
                           const std::vector<hw::OperatingPoint>& ops,
                           bool rapl_jitter, const std::string& label) const {
  const std::size_t n = allocation_.size();
  const int iterations =
      config_.iterations > 0 ? config_.iterations : w.default_iterations;

  util::SeedSequence run_seed = cluster_.seed()
                                    .fork("execute")
                                    .fork(w.name)
                                    .fork(label)
                                    .fork("salt", config_.run_salt);

  // Persistent per-rank efficiency factors for this run (NUMA/OS placement).
  // Each rank's draw comes from its own seed fork, so the element-wise fill
  // is bit-identical at any thread count.
  std::vector<double> rank_factor(n, 1.0);
  if (w.per_rank_noise_frac > 0.0) {
    util::parallel_for(
        n,
        [&](std::size_t r) {
          util::Rng rng(run_seed.fork("rank-noise", r));
          rank_factor[r] =
              std::max(0.5, 1.0 + w.per_rank_noise_frac * rng.normal());
        },
        1024);
  }

  const double jitter_sd = config_.rapl.control_jitter_sd_ghz;
  workloads::ComputeTimeFn compute = [&](std::size_t rank, int iter) {
    const hw::OperatingPoint& op = ops[rank];
    util::Rng rng(run_seed.fork(
        "iter", static_cast<std::uint64_t>(rank) * 1000003ULL +
                    static_cast<std::uint64_t>(iter)));
    double t;
    if (rapl_jitter && !op.throttled && jitter_sd > 0.0) {
      // RAPL's dynamic control dithers the clock around the sustained point.
      // The floor is the *module's* ladder, not the architecture's CPU
      // ladder — a GPU or DIMM dithers within its own frequency range.
      const hw::Module& mod = cluster_.module(allocation_[rank]);
      double f = op.perf_freq_ghz + jitter_sd * rng.normal();
      f = std::clamp(
          f, mod.ladder().fmin() * (1.0 - config_.rapl.control_perf_penalty),
          mod.max_freq_ghz());
      t = w.iter_seconds_at(f);
    } else {
      t = w.iter_seconds(op);
    }
    t *= rank_factor[rank];
    if (w.runtime_noise_frac > 0.0) {
      t *= std::max(0.2, 1.0 + w.runtime_noise_frac * rng.normal());
    }
    return t;
  };

  // Compile straight to image form: the per-rank stencil topology is stored
  // once instead of once per iteration, and validation happens here rather
  // than inside the engine run.
  auto image = workloads::build_program_image(w, n, iterations, compute);
  des::Engine engine(config_.network);

  // The budgeter planned dynamic power at profile.data_entropy; silicon
  // draws power at the entropy the run actually streamed through it. Scale
  // each rank's CPU draw by the ratio of its module's entropy response at
  // the realized vs the planned point — exactly 1.0 (hence a bitwise no-op)
  // for every workload without a schedule.
  std::vector<hw::OperatingPoint> realized;
  const std::vector<hw::OperatingPoint>* points = &ops;
  if (!w.phase_entropy.empty()) {
    realized = ops;
    util::parallel_for(
        n,
        [&](std::size_t r) {
          const hw::Module& mod = cluster_.module(allocation_[r]);
          const double planned = mod.entropy_factor(w.profile.data_entropy);
          const double actual =
              mod.entropy_factor(image.mean_compute_entropy(r));
          realized[r].cpu_w *= actual / planned;
        },
        1024);
    points = &realized;
  }
  const std::vector<hw::OperatingPoint>& pts = *points;

  RunMetrics m;
  m.workload = w.name;
  m.scheme = label;
  m.des = engine.run(image);
  m.makespan_s = m.des.makespan_s;
  m.modules.resize(n);
  util::parallel_for(
      n,
      [&](std::size_t i) {
        m.modules[i].id = allocation_[i];
        m.modules[i].op = pts[i];
      },
      1024);
  // Fixed chunked association — identical to the former sequential
  // accumulation for any fleet that fits one chunk, and deterministic beyond.
  m.total_power_w =
      util::chunked_sum(n, [&](std::size_t i) { return pts[i].module_w(); });
  m.total_cpu_power_w =
      util::chunked_sum(n, [&](std::size_t i) { return pts[i].cpu_w; });
  m.total_dram_power_w =
      util::chunked_sum(n, [&](std::size_t i) { return pts[i].dram_w; });
  return m;
}

std::vector<double> normalized_times(const RunMetrics& run,
                                     const RunMetrics& baseline) {
  if (run.des.ranks.size() != baseline.des.ranks.size()) {
    throw InvalidArgument("normalized_times: rank count mismatch");
  }
  std::vector<double> out;
  out.reserve(run.des.ranks.size());
  for (std::size_t r = 0; r < run.des.ranks.size(); ++r) {
    double base = baseline.des.ranks[r].finish_time_s;
    VAPB_REQUIRE_MSG(base > 0.0, "baseline rank time must be positive");
    out.push_back(run.des.ranks[r].finish_time_s / base);
  }
  return out;
}

double vt_normalized(const RunMetrics& run, const RunMetrics& baseline) {
  return stats::worst_case_ratio(normalized_times(run, baseline));
}

double speedup(const RunMetrics& run, const RunMetrics& baseline) {
  VAPB_REQUIRE_MSG(run.makespan_s > 0.0, "run has zero makespan");
  return baseline.makespan_s / run.makespan_s;
}

}  // namespace vapb::core
