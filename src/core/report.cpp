#include "core/report.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vapb::core {

namespace {

std::string md_row(const std::vector<std::string>& cells) {
  return "| " + util::join(cells, " | ") + " |\n";
}

std::string md_rule(std::size_t columns) {
  std::vector<std::string> dashes(columns, "---");
  return md_row(dashes);
}

}  // namespace

std::string markdown_report(
    Campaign& campaign, const std::vector<const workloads::Workload*>& apps,
    const ReportOptions& options) {
  if (apps.empty()) throw InvalidArgument("markdown_report: no workloads");
  if (options.cm_grid_w.empty()) {
    throw InvalidArgument("markdown_report: empty budget grid");
  }
  if (options.schemes.empty()) {
    throw InvalidArgument("markdown_report: no schemes");
  }
  const auto n = static_cast<double>(campaign.allocation().size());

  std::ostringstream md;
  md << "# " << options.title << "\n\n";
  md << campaign.allocation().size() << " modules of "
     << campaign.cluster().spec().system << ", PVT microbenchmark `"
     << campaign.pvt().microbench_name() << "`.\n\n";

  // -- Classification matrix -------------------------------------------------
  md << "## Scenario classification\n\n";
  {
    std::vector<std::string> head{"benchmark"};
    for (double cm : options.cm_grid_w) {
      head.push_back("Cm=" + util::fmt_double(cm, 0) + "W");
    }
    md << md_row(head) << md_rule(head.size());
    for (auto* w : apps) {
      std::vector<std::string> row{w->name};
      for (double cm : options.cm_grid_w) {
        CellClass c = campaign.classify(*w, cm * n);
        row.push_back(c == CellClass::kValid ? "X"
                      : c == CellClass::kUnconstrained ? "." : "-");
      }
      md << md_row(row);
    }
    md << "\n";
  }

  // -- Speedups (and optionally power) per workload --------------------------
  for (auto* w : apps) {
    md << "## " << w->name << "\n\n";
    std::vector<std::string> head{"Cs"};
    for (SchemeKind k : options.schemes) head.push_back(scheme_name(k));
    md << md_row(head) << md_rule(head.size());

    std::vector<std::string> power_rows;
    for (double cm : options.cm_grid_w) {
      double budget = cm * n;
      CellResult cell = campaign.run_cell(*w, budget, options.schemes);
      std::vector<std::string> row{
          util::fmt_double(budget / 1000.0, 1) + " kW"};
      std::vector<std::string> prow = row;
      for (const auto& s : cell.schemes) {
        if (!s.metrics.feasible) {
          row.push_back("-");
          prow.push_back("-");
          continue;
        }
        row.push_back(std::isnan(s.speedup_vs_naive)
                          ? std::string("n/a")
                          : util::fmt_double(s.speedup_vs_naive, 2) + "x");
        bool violated = s.metrics.total_power_w > budget * 1.01;
        prow.push_back(
            util::fmt_double(s.metrics.total_power_w / 1000.0, 1) +
            (violated ? " kW **!**" : " kW"));
      }
      md << md_row(row);
      if (options.include_power_table) power_rows.push_back(md_row(prow));
    }
    md << "\n";
    if (options.include_power_table) {
      md << "Total power (limit per row as above; `!` = violation):\n\n";
      md << md_row(head) << md_rule(head.size());
      for (const auto& r : power_rows) md << r;
      md << "\n";
    }
  }

  // -- Calibration ------------------------------------------------------------
  if (options.include_calibration) {
    md << "## PMT calibration error vs oracle\n\n";
    md << md_row({"benchmark", "mean abs error"}) << md_rule(2);
    for (auto* w : apps) {
      md << md_row({w->name,
                    util::fmt_double(100.0 * campaign.calibration_error(*w),
                                     1) +
                        " %"});
    }
    md << "\n";
  }
  return md.str();
}

}  // namespace vapb::core
