// Power Model Table (PMT) — application-dependent, per-module power
// predictions at fmax and fmin (paper Section 5.2, Figure 6).
//
// Three constructions:
//  * calibrate_pmt  — the paper's scheme: single-module test run scaled
//                     through the PVT (what VaPc/VaFs use);
//  * oracle_pmt     — measure the application on every module
//                     (VaPcOr/VaFsOr);
//  * constant_pmt   — the same entry for every module (Naive's TDP-based
//                     table, and Pc's fleet-average table).
//
// All powers are util::Watts and all frequencies util::GigaHertz; the
// interpolation coefficient alpha is dimensionless.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/pvt.hpp"
#include "core/test_run.hpp"
#include "util/units.hpp"
#include "workloads/workload.hpp"

namespace vapb::core {

struct PmtEntry {
  util::Watts cpu_max_w{};
  util::Watts dram_max_w{};
  util::Watts cpu_min_w{};
  util::Watts dram_min_w{};

  [[nodiscard]] util::Watts module_max_w() const {
    return cpu_max_w + dram_max_w;
  }
  [[nodiscard]] util::Watts module_min_w() const {
    return cpu_min_w + dram_min_w;
  }

  /// Interpolated predictions at coefficient alpha (paper Eq. 2-4).
  [[nodiscard]] util::Watts cpu_at(double alpha) const {
    return alpha * (cpu_max_w - cpu_min_w) + cpu_min_w;
  }
  [[nodiscard]] util::Watts dram_at(double alpha) const {
    return alpha * (dram_max_w - dram_min_w) + dram_min_w;
  }
  [[nodiscard]] util::Watts module_at(double alpha) const {
    return cpu_at(alpha) + dram_at(alpha);
  }
};

/// A PMT covers exactly the modules allocated to the application, in
/// allocation order: entry k describes allocation[k].
class Pmt {
 public:
  Pmt(std::vector<PmtEntry> entries, util::GigaHertz fmax_ghz,
      util::GigaHertz fmin_ghz);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const PmtEntry& entry(std::size_t k) const;
  [[nodiscard]] const std::vector<PmtEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] util::GigaHertz fmax_ghz() const { return fmax_; }
  [[nodiscard]] util::GigaHertz fmin_ghz() const { return fmin_; }

  /// Frequency realized by coefficient alpha (paper Eq. 1).
  [[nodiscard]] util::GigaHertz freq_at(double alpha) const {
    return alpha * (fmax_ - fmin_) + fmin_;
  }

  /// Sums of module_min / module_max across entries.
  [[nodiscard]] util::Watts total_min_w() const;
  [[nodiscard]] util::Watts total_max_w() const;

 private:
  std::vector<PmtEntry> entries_;
  util::GigaHertz fmax_, fmin_;
};

/// The paper's calibration (Figure 6): divide the test-run measurements by
/// the test module's PVT scales to estimate the fleet averages, then multiply
/// by each allocated module's scales.
Pmt calibrate_pmt(const Pvt& pvt, const TestRunResult& test,
                  std::span<const hw::ModuleId> allocation,
                  const hw::FrequencyLadder& ladder);

/// Perfect calibration: runs the application on every allocated module.
Pmt oracle_pmt(const cluster::Cluster& cluster,
               std::span<const hw::ModuleId> allocation,
               const workloads::Workload& app, util::SeedSequence seed);

/// The same entry replicated for n modules.
Pmt constant_pmt(PmtEntry entry, std::size_t n,
                 const hw::FrequencyLadder& ladder);

/// Fleet-average version of an existing PMT (Pc's table: application-
/// dependent but variation-unaware).
Pmt averaged_pmt(const Pmt& pmt);

/// Mean absolute relative error of `predicted` vs `truth` on module power at
/// fmax — the Section 5.3 prediction-accuracy metric.
double pmt_prediction_error(const Pmt& predicted, const Pmt& truth);

}  // namespace vapb::core
