// Power Model Table (PMT) — application-dependent, per-module power
// predictions at fmax and fmin (paper Section 5.2, Figure 6).
//
// Three constructions:
//  * calibrate_pmt  — the paper's scheme: single-module test run scaled
//                     through the PVT (what VaPc/VaFs use);
//  * oracle_pmt     — measure the application on every module
//                     (VaPcOr/VaFsOr);
//  * constant_pmt   — the same entry for every module (Naive's TDP-based
//                     table, and Pc's fleet-average table).
//
// All powers are util::Watts and all frequencies util::GigaHertz; the
// interpolation coefficient alpha is dimensionless.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/pvt.hpp"
#include "core/test_run.hpp"
#include "hw/device_class.hpp"
#include "util/units.hpp"
#include "workloads/workload.hpp"

namespace vapb::core {

/// Frequency range one device class sweeps as alpha goes 0 -> 1 inside a
/// heterogeneous PMT. The Eq. 6 alpha solve itself is pure watts — one
/// shared coefficient interpolates every entry's power — but the frequency
/// that coefficient *realizes* is per class: alpha = 0.3 means 30% up the
/// CPU ladder on a CPU and 30% up the GPU ladder on a GPU.
struct ClassFreqRange {
  util::GigaHertz fmax_ghz{};
  util::GigaHertz fmin_ghz{};
};

struct PmtEntry {
  util::Watts cpu_max_w{};
  util::Watts dram_max_w{};
  util::Watts cpu_min_w{};
  util::Watts dram_min_w{};

  [[nodiscard]] util::Watts module_max_w() const {
    return cpu_max_w + dram_max_w;
  }
  [[nodiscard]] util::Watts module_min_w() const {
    return cpu_min_w + dram_min_w;
  }

  /// Interpolated predictions at coefficient alpha (paper Eq. 2-4).
  [[nodiscard]] util::Watts cpu_at(double alpha) const {
    return alpha * (cpu_max_w - cpu_min_w) + cpu_min_w;
  }
  [[nodiscard]] util::Watts dram_at(double alpha) const {
    return alpha * (dram_max_w - dram_min_w) + dram_min_w;
  }
  [[nodiscard]] util::Watts module_at(double alpha) const {
    return cpu_at(alpha) + dram_at(alpha);
  }
};

/// A PMT covers exactly the modules allocated to the application, in
/// allocation order: entry k describes allocation[k].
class Pmt {
 public:
  Pmt(std::vector<PmtEntry> entries, util::GigaHertz fmax_ghz,
      util::GigaHertz fmin_ghz);

  /// Heterogeneous table: `classes[k]` is the device class of entry k and
  /// `class_freq` the frequency range each class sweeps over alpha. The
  /// plain (fmax, fmin) pair stays the table's *reference* range (what
  /// freq_at(alpha) and BudgetResult::target_freq_ghz report — by
  /// convention the CPU ladder). `classes` must match `entries` in size;
  /// every class that appears needs a valid (0 < fmin <= fmax) range.
  Pmt(std::vector<PmtEntry> entries, util::GigaHertz fmax_ghz,
      util::GigaHertz fmin_ghz, std::vector<hw::DeviceClass> classes,
      std::array<ClassFreqRange, hw::kDeviceClassCount> class_freq);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const PmtEntry& entry(std::size_t k) const;
  [[nodiscard]] const std::vector<PmtEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] util::GigaHertz fmax_ghz() const { return fmax_; }
  [[nodiscard]] util::GigaHertz fmin_ghz() const { return fmin_; }

  /// Frequency realized by coefficient alpha (paper Eq. 1) on the reference
  /// (CPU) range.
  [[nodiscard]] util::GigaHertz freq_at(double alpha) const {
    return alpha * (fmax_ - fmin_) + fmin_;
  }

  /// True when the table carries per-entry device classes (built over a
  /// mixed fleet). Homogeneous tables — every pre-mix construction — report
  /// false and behave exactly as before.
  [[nodiscard]] bool heterogeneous() const { return !classes_.empty(); }

  /// Device class of entry k (kCpu for every entry of a homogeneous table).
  [[nodiscard]] hw::DeviceClass device_class(std::size_t k) const {
    return classes_.empty() ? hw::DeviceClass::kCpu : classes_[k];
  }

  /// Frequency range class `c` sweeps over alpha (the reference range on a
  /// homogeneous table).
  [[nodiscard]] const ClassFreqRange& class_range(hw::DeviceClass c) const {
    return class_freq_[hw::device_class_index(c)];
  }

  /// Frequency entry k realizes at coefficient alpha — Eq. 1 evaluated on
  /// the entry's own class range. Bit-identical to freq_at(alpha) on a
  /// homogeneous table.
  [[nodiscard]] util::GigaHertz freq_at(double alpha, std::size_t k) const {
    const ClassFreqRange& r = class_freq_[hw::device_class_index(
        classes_.empty() ? hw::DeviceClass::kCpu : classes_[k])];
    return alpha * (r.fmax_ghz - r.fmin_ghz) + r.fmin_ghz;
  }

  /// Sums of module_min / module_max across entries.
  [[nodiscard]] util::Watts total_min_w() const;
  [[nodiscard]] util::Watts total_max_w() const;

 private:
  std::vector<PmtEntry> entries_;
  util::GigaHertz fmax_, fmin_;
  /// Empty on homogeneous tables; aligned with entries_ otherwise.
  std::vector<hw::DeviceClass> classes_;
  /// Every slot defaults to the reference range, so class_range() is safe
  /// to call on any table.
  std::array<ClassFreqRange, hw::kDeviceClassCount> class_freq_{};
};

/// The paper's calibration (Figure 6): divide the test-run measurements by
/// the test module's PVT scales to estimate the fleet averages, then multiply
/// by each allocated module's scales.
Pmt calibrate_pmt(const Pvt& pvt, const TestRunResult& test,
                  std::span<const hw::ModuleId> allocation,
                  const hw::FrequencyLadder& ladder);

/// One pinned test run per device class, indexed by
/// hw::device_class_index. Slots for classes absent from an allocation may
/// be null.
using ClassTestRuns =
    std::array<std::shared_ptr<const TestRunResult>, hw::kDeviceClassCount>;

/// Figure 6 calibration generalized to a mixed fleet: each device class
/// gets its own single-module test run (a GPU's power curve says nothing
/// about a DIMM's), divided by the test module's PVT scales — which are
/// relative to the *class* average on a heterogeneous PVT — and scaled
/// onto the allocated modules of that class. The resulting table carries
/// per-entry classes and per-class frequency ranges. Throws when a class
/// present in the allocation has no test run.
Pmt calibrate_pmt_per_class(const cluster::Cluster& cluster, const Pvt& pvt,
                            const ClassTestRuns& class_tests,
                            std::span<const hw::ModuleId> allocation);

/// Perfect calibration: runs the application on every allocated module.
Pmt oracle_pmt(const cluster::Cluster& cluster,
               std::span<const hw::ModuleId> allocation,
               const workloads::Workload& app, util::SeedSequence seed);

/// The same entry replicated for n modules.
Pmt constant_pmt(PmtEntry entry, std::size_t n,
                 const hw::FrequencyLadder& ladder);

/// Fleet-average version of an existing PMT (Pc's table: application-
/// dependent but variation-unaware).
Pmt averaged_pmt(const Pmt& pmt);

/// Mean absolute relative error of `predicted` vs `truth` on module power at
/// fmax — the Section 5.3 prediction-accuracy metric.
double pmt_prediction_error(const Pmt& predicted, const Pmt& truth);

}  // namespace vapb::core
