#include "core/pvt.hpp"

#include <array>
#include <sstream>

#include "hw/sensor.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace vapb::core {

Pvt::Pvt(std::string microbench_name, std::vector<PvtEntry> entries)
    : microbench_name_(std::move(microbench_name)),
      entries_(std::move(entries)) {
  VAPB_REQUIRE_MSG(!entries_.empty(), "PVT needs at least one entry");
}

const PvtEntry& Pvt::entry(hw::ModuleId id) const {
  if (id >= entries_.size()) {
    throw InvalidArgument("PVT: module id " + std::to_string(id) +
                          " out of range");
  }
  return entries_[id];
}

Pvt Pvt::generate(const cluster::Cluster& cluster,
                  const workloads::Workload& micro, util::SeedSequence seed,
                  double measure_seconds) {
  const std::size_t n = cluster.size();

  struct Raw {
    double cpu_max, dram_max, cpu_min, dram_min;
  };
  // Every module is exercised at the extremes of *its own* ladder: a GPU's
  // fmax is not a CPU's. On a homogeneous fleet each module's ladder is the
  // architecture ladder, so the measurements are unchanged.
  std::vector<Raw> raw(n);
  util::parallel_for(n, [&](std::size_t i) {
    const hw::Module& m = cluster.module(static_cast<hw::ModuleId>(i));
    const double fmax = m.ladder().fmax();
    const double fmin = m.ladder().fmin();
    hw::Sensor sensor(cluster.spec().measurement,
                      seed.fork("pvt-sensor", i), micro.runtime_noise_frac);
    raw[i].cpu_max = sensor.measure_avg_w(m.cpu_power_w(micro.profile, fmax),
                                          measure_seconds);
    raw[i].dram_max = sensor.measure_avg_w(m.dram_power_w(micro.profile, fmax),
                                           measure_seconds);
    raw[i].cpu_min = sensor.measure_avg_w(m.cpu_power_w(micro.profile, fmin),
                                          measure_seconds);
    raw[i].dram_min = sensor.measure_avg_w(m.dram_power_w(micro.profile, fmin),
                                           measure_seconds);
  });

  // Scales are relative to the *class* average: comparing a DIMM to the
  // CPU mean would read as huge "variation" that is really just device
  // physics. A homogeneous fleet has one class covering every module, with
  // the accumulation visiting modules in the same ascending order as the
  // old fleet-wide mean — bit-identical.
  std::array<Raw, hw::kDeviceClassCount> avg{};
  std::array<double, hw::kDeviceClassCount> cnt{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = hw::device_class_index(
        cluster.device_class(static_cast<hw::ModuleId>(i)));
    avg[c].cpu_max += raw[i].cpu_max;
    avg[c].dram_max += raw[i].dram_max;
    avg[c].cpu_min += raw[i].cpu_min;
    avg[c].dram_min += raw[i].dram_min;
    cnt[c] += 1.0;
  }
  for (std::size_t c = 0; c < hw::kDeviceClassCount; ++c) {
    if (cnt[c] == 0.0) continue;
    avg[c].cpu_max /= cnt[c];
    avg[c].dram_max /= cnt[c];
    avg[c].cpu_min /= cnt[c];
    avg[c].dram_min /= cnt[c];
    VAPB_REQUIRE_MSG(avg[c].cpu_max > 0 && avg[c].dram_max > 0 &&
                         avg[c].cpu_min > 0 && avg[c].dram_min > 0,
                     "PVT generation measured non-positive average power");
  }

  std::vector<PvtEntry> entries(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Raw& a = avg[hw::device_class_index(
        cluster.device_class(static_cast<hw::ModuleId>(i)))];
    entries[i].cpu_max = raw[i].cpu_max / a.cpu_max;
    entries[i].dram_max = raw[i].dram_max / a.dram_max;
    entries[i].cpu_min = raw[i].cpu_min / a.cpu_min;
    entries[i].dram_min = raw[i].dram_min / a.dram_min;
  }
  return Pvt(micro.name, std::move(entries));
}

std::string Pvt::serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << "pvt-v1 " << microbench_name_ << " " << entries_.size() << "\n";
  for (const PvtEntry& e : entries_) {
    os << e.cpu_max << " " << e.dram_max << " " << e.cpu_min << " "
       << e.dram_min << "\n";
  }
  return os.str();
}

Pvt Pvt::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string magic, name;
  std::size_t n = 0;
  if (!(is >> magic >> name >> n) || magic != "pvt-v1") {
    throw InvalidArgument("Pvt::deserialize: bad header");
  }
  std::vector<PvtEntry> entries(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> entries[i].cpu_max >> entries[i].dram_max >>
          entries[i].cpu_min >> entries[i].dram_min)) {
      throw InvalidArgument("Pvt::deserialize: truncated at entry " +
                            std::to_string(i));
    }
  }
  return Pvt(name, std::move(entries));
}

}  // namespace vapb::core
