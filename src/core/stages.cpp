#include "core/stages.hpp"

#include <string>
#include <utility>
#include <vector>

#include "core/calibration_cache.hpp"
#include "fault/injector.hpp"
#include "hw/cpufreq.hpp"
#include "hw/rapl.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw InvalidArgument(std::string("pipeline stage: ") + what);
}

void count(RunContext& ctx, const char* counter) {
  if (ctx.telemetry != nullptr) ctx.telemetry->add_counter(counter);
}

/// The injector when faults are actually on; null keeps every stage on the
/// bit-identical unperturbed path.
const fault::FaultInjector* active_fault(const RunContext& ctx) {
  return (ctx.fault != nullptr && ctx.fault->enabled()) ? ctx.fault : nullptr;
}

/// The injector event for this run's transient faults: one draw per campaign
/// job (workload x budget x repetition salt), identical for every scheme of
/// that job and at any thread count.
std::uint64_t fault_job_event(const RunContext& ctx) {
  return fault::job_event(
      ctx.workload != nullptr ? std::string_view(ctx.workload->name)
                              : std::string_view(),
      ctx.budget_w, ctx.runner != nullptr ? ctx.runner->config().run_salt : 0);
}

}  // namespace

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

void CachedCalibrationStage::calibrate(RunContext& ctx) const {
  require(ctx.cluster != nullptr, "calibration needs a cluster");
  require(ctx.workload != nullptr, "calibration needs a workload");
  if (!ctx.pvt) {
    ctx.pvt = CalibrationCache::global().pvt(
        *ctx.cluster, workloads::pvt_microbench(),
        ctx.cluster->seed().fork("pvt"));
    count(ctx, "pvt_from_cache");
  }
  if (!ctx.test) {
    require(!ctx.allocation.empty(), "calibration needs an allocation");
    ctx.test = CalibrationCache::global().test_run(
        *ctx.cluster, ctx.allocation.front(), *ctx.workload,
        ctx.cluster->seed().fork("test-run").fork(ctx.workload->name));
    count(ctx, "test_run_from_cache");
  }
  if (ctx.cluster->heterogeneous()) {
    // One pinned test run per device class present in the allocation — a
    // CPU's power curve calibrates nothing about a GPU. The front module's
    // class reuses `test` (same module, same draw); other classes pin their
    // first allocated module under a class-named seed fork, so adding a
    // class to the mix never changes another class's calibration.
    const hw::DeviceClass front_class =
        ctx.cluster->device_class(ctx.allocation.front());
    ctx.class_tests[hw::device_class_index(front_class)] = ctx.test;
    for (hw::ModuleId id : ctx.allocation) {
      const hw::DeviceClass c = ctx.cluster->device_class(id);
      std::shared_ptr<const TestRunResult>& slot =
          ctx.class_tests[hw::device_class_index(c)];
      if (slot) continue;
      slot = CalibrationCache::global().test_run(
          *ctx.cluster, id, *ctx.workload,
          ctx.cluster->seed()
              .fork("test-run")
              .fork(ctx.workload->name)
              .fork(hw::device_class_name(c)));
      count(ctx, "class_test_run_from_cache");
    }
  }
  if (const fault::FaultInjector* fi = active_fault(ctx)) {
    // Faults corrupt what calibration *saw*, not the hardware itself:
    // replace the artifacts with perturbed copies (sensor noise on every
    // reading, plus the drift prefix the measurement epoch had accumulated)
    // so every downstream consumer works from the faulty measurements. The
    // originals — possibly shared with other runs — are never mutated.
    std::vector<PvtEntry> entries = ctx.pvt->entries();
    for (std::size_t m = 0; m < entries.size(); ++m) {
      const auto mc = static_cast<std::uint32_t>(
          ctx.cluster->device_class(static_cast<hw::ModuleId>(m)));
      const double stale = fi->stale_drift_factor(m, mc);
      PvtEntry& e = entries[m];
      e.cpu_max =
          stale * fi->perturb_reading_w(e.cpu_max, "sensor-pvt", m, 0, mc);
      e.dram_max =
          stale * fi->perturb_reading_w(e.dram_max, "sensor-pvt", m, 1, mc);
      e.cpu_min =
          stale * fi->perturb_reading_w(e.cpu_min, "sensor-pvt", m, 2, mc);
      e.dram_min =
          stale * fi->perturb_reading_w(e.dram_min, "sensor-pvt", m, 3, mc);
    }
    ctx.pvt = std::make_shared<const Pvt>(ctx.pvt->microbench_name(),
                                          std::move(entries));

    TestRunResult t = *ctx.test;
    const auto mod = static_cast<std::uint64_t>(t.module);
    const auto tc = static_cast<std::uint32_t>(ctx.cluster->device_class(
        static_cast<hw::ModuleId>(t.module)));
    const double stale = fi->stale_drift_factor(mod, tc);
    const auto sense = [&](util::Watts w, std::uint64_t event) {
      return util::Watts{stale * fi->perturb_reading_w(w.value(), "sensor-test",
                                                       mod, event, tc)};
    };
    t.cpu_max_w = sense(t.cpu_max_w, 0);
    t.dram_max_w = sense(t.dram_max_w, 1);
    t.cpu_min_w = sense(t.cpu_min_w, 2);
    t.dram_min_w = sense(t.dram_min_w, 3);
    ctx.test = std::make_shared<const TestRunResult>(t);

    // Per-class test runs see the same sensor/drift corruption, each
    // through its own module's noise stream. The slot aliasing `test`
    // (same module) re-aliases the perturbed copy instead of being
    // perturbed twice.
    for (std::size_t c = 0; c < hw::kDeviceClassCount; ++c) {
      std::shared_ptr<const TestRunResult>& slot = ctx.class_tests[c];
      if (!slot) continue;
      if (slot->module == t.module) {
        slot = ctx.test;
        continue;
      }
      TestRunResult ct = *slot;
      const auto cmod = static_cast<std::uint64_t>(ct.module);
      const auto cc = static_cast<std::uint32_t>(c);
      const double cstale = fi->stale_drift_factor(cmod, cc);
      const auto csense = [&](util::Watts w, std::uint64_t event) {
        return util::Watts{cstale * fi->perturb_reading_w(w.value(),
                                                          "sensor-test", cmod,
                                                          event, cc)};
      };
      ct.cpu_max_w = csense(ct.cpu_max_w, 0);
      ct.dram_max_w = csense(ct.dram_max_w, 1);
      ct.cpu_min_w = csense(ct.cpu_min_w, 2);
      ct.dram_min_w = csense(ct.dram_min_w, 3);
      slot = std::make_shared<const TestRunResult>(ct);
    }
    count(ctx, "fault_calibration_perturbed");
  }
}

// ---------------------------------------------------------------------------
// Power model
// ---------------------------------------------------------------------------

void NaivePmtStage::model(RunContext& ctx) const {
  require(ctx.cluster != nullptr, "power model needs a cluster");
  ctx.pmt = std::make_shared<const Pmt>(
      constant_pmt(PmtEntry{table_.tdp_cpu_w, table_.tdp_dram_w,
                            table_.min_cpu_w, table_.min_dram_w},
                   ctx.allocation.size(), ctx.cluster->spec().ladder));
}

void AveragedCalibratedPmtStage::model(RunContext& ctx) const {
  require(ctx.cluster != nullptr, "power model needs a cluster");
  require(ctx.pvt && ctx.test, "power model needs calibration artifacts");
  if (ctx.cluster->heterogeneous()) {
    ctx.pmt = std::make_shared<const Pmt>(averaged_pmt(calibrate_pmt_per_class(
        *ctx.cluster, *ctx.pvt, ctx.class_tests, ctx.allocation)));
    return;
  }
  ctx.pmt = std::make_shared<const Pmt>(
      averaged_pmt(calibrate_pmt(*ctx.pvt, *ctx.test, ctx.allocation,
                                 ctx.cluster->spec().ladder)));
}

void CalibratedPmtStage::model(RunContext& ctx) const {
  require(ctx.cluster != nullptr, "power model needs a cluster");
  require(ctx.pvt && ctx.test, "power model needs calibration artifacts");
  if (ctx.cluster->heterogeneous()) {
    // Class-aware Figure 6: per-class test runs scaled through the
    // class-relative PVT. The legacy single-test path stays byte-for-byte
    // for homogeneous fleets.
    ctx.pmt = std::make_shared<const Pmt>(calibrate_pmt_per_class(
        *ctx.cluster, *ctx.pvt, ctx.class_tests, ctx.allocation));
    return;
  }
  ctx.pmt = std::make_shared<const Pmt>(calibrate_pmt(
      *ctx.pvt, *ctx.test, ctx.allocation, ctx.cluster->spec().ladder));
}

void OraclePmtStage::model(RunContext& ctx) const {
  require(ctx.cluster != nullptr, "power model needs a cluster");
  require(ctx.workload != nullptr, "power model needs a workload");
  ctx.pmt = std::make_shared<const Pmt>(
      oracle_pmt(*ctx.cluster, ctx.allocation, *ctx.workload,
                 ctx.seed.fork("oracle-pmt")));
}

CachedPowerModelStage::CachedPowerModelStage(
    std::shared_ptr<const PowerModelStage> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw InvalidArgument("CachedPowerModelStage: null inner stage");
}

void CachedPowerModelStage::model(RunContext& ctx) const {
  require(ctx.cluster != nullptr, "power model needs a cluster");
  require(ctx.workload != nullptr, "power model needs a workload");
  require(ctx.pvt && ctx.test,
          "cached power model needs calibration artifacts");
  require(!ctx.scheme.empty(), "cached power model needs a scheme name");
  const fault::FaultInjector* fi = active_fault(ctx);
  ctx.pmt = CalibrationCache::global().scheme_pmt(
      ctx.scheme, *ctx.cluster, ctx.allocation, *ctx.workload, *ctx.pvt,
      *ctx.test, ctx.seed,
      [&] {
        inner_->model(ctx);
        return Pmt(*ctx.pmt);
      },
      fi != nullptr ? fi->fingerprint() : 0);
}

ProvidedPmtStage::ProvidedPmtStage(std::shared_ptr<const Pmt> pmt)
    : pmt_(std::move(pmt)) {
  VAPB_REQUIRE_MSG(pmt_ != nullptr, "ProvidedPmtStage needs a table");
}

void ProvidedPmtStage::model(RunContext& ctx) const {
  require(ctx.allocation.size() == pmt_->size(),
          "provided PMT does not cover this allocation");
  ctx.pmt = pmt_;
}

// ---------------------------------------------------------------------------
// Budget solve
// ---------------------------------------------------------------------------

void AlphaSolveStage::solve(RunContext& ctx) const {
  require(ctx.pmt != nullptr, "budget solve needs a power model");
  if (ctx.tree != nullptr) {
    ctx.budget =
        solve_budget_tree(*ctx.pmt, *ctx.tree, util::Watts{ctx.budget_w});
    count(ctx, "hierarchical_solve");
  } else {
    ctx.budget = solve_budget(*ctx.pmt, util::Watts{ctx.budget_w});
  }
}

void FixedBudgetStage::solve(RunContext& ctx) const {
  ctx.budget = preset_;
}

GuardBandSolveStage::GuardBandSolveStage(double guard_frac)
    : guard_frac_(guard_frac) {
  if (!(guard_frac >= 0.0 && guard_frac < 1.0)) {
    throw InvalidArgument("GuardBandSolveStage: guard_frac must be in [0, 1)");
  }
}

void GuardBandSolveStage::solve(RunContext& ctx) const {
  require(ctx.pmt != nullptr, "budget solve needs a power model");
  const util::Watts derated_w{ctx.budget_w * (1.0 - guard_frac_)};
  if (ctx.tree != nullptr) {
    ctx.budget = solve_budget_tree(*ctx.pmt, *ctx.tree, derated_w);
    count(ctx, "hierarchical_solve");
  } else {
    ctx.budget = solve_budget(*ctx.pmt, derated_w);
  }
  count(ctx, "guard_band_solve");
}

// ---------------------------------------------------------------------------
// Enforcement
// ---------------------------------------------------------------------------

void PmmdEnforcementStage::enforce(RunContext& ctx) const {
  require(ctx.runner != nullptr, "enforcement needs a runner");
  require(ctx.workload != nullptr, "enforcement needs a workload");
  require(ctx.budget.has_value(), "enforcement needs a solved budget");
  const BudgetResult& budget = *ctx.budget;
  const std::span<const hw::ModuleId> allocation = ctx.allocation;
  if (budget.allocations.size() != allocation.size()) {
    throw InvalidArgument("run_budgeted: budget covers " +
                          std::to_string(budget.allocations.size()) +
                          " modules, allocation has " +
                          std::to_string(allocation.size()));
  }

  // The PMMD region (apply the setting on entry, snapshot the sustained
  // operating point, restore on exit) is independent per module, so it runs
  // as one element-wise pass chunked across the thread pool — bit-identical
  // at any thread count, and without materializing fleet-sized controller
  // vectors on the way.
  const RunConfig& config = ctx.runner->config();
  // On a heterogeneous table, frequency selection realizes alpha on each
  // entry's own class ladder (Eq. 1 per class) — one shared coefficient,
  // class-specific clocks. Homogeneous tables keep the single solved
  // target verbatim.
  const Pmt* class_pmt =
      (ctx.pmt && ctx.pmt->heterogeneous()) ? ctx.pmt.get() : nullptr;
  ctx.ops.assign(allocation.size(), hw::OperatingPoint{});
  util::parallel_for(
      allocation.size(),
      [&](std::size_t i) {
        const hw::Module& module = ctx.cluster->module(allocation[i]);
        if (enforcement_ == Enforcement::kPowerCap) {
          hw::Rapl rapl(module, config.rapl);
          rapl.set_cpu_limit(budget.allocations[i].cpu_cap_w);
          ctx.ops[i] = rapl.operating_point(ctx.workload->profile);
        } else {
          hw::CpufreqGovernor governor(module);
          governor.set_frequency(class_pmt != nullptr
                                     ? class_pmt->freq_at(budget.alpha, i)
                                     : budget.target_freq_ghz);
          ctx.ops[i] = governor.operating_point(ctx.workload->profile);
        }
      },
      256);
  ctx.enforcement = enforcement_;
  ctx.rapl_jitter = enforcement_ == Enforcement::kPowerCap;

  if (const fault::FaultInjector* fi = active_fault(ctx)) {
    // Here faults hit the hardware itself: each module's true power has
    // drifted since calibration, and RAPL enforces its cap with an error.
    const std::uint64_t event = fault_job_event(ctx);
    for (std::size_t i = 0; i < allocation.size(); ++i) {
      const auto mod = static_cast<std::uint64_t>(allocation[i]);
      const double drift = fi->drift_factor(
          mod,
          static_cast<std::uint32_t>(ctx.cluster->device_class(allocation[i])));
      hw::OperatingPoint& op = ctx.ops[i];
      if (enforcement_ == Enforcement::kPowerCap) {
        const double cap_w = budget.allocations[i].cpu_cap_w.value();
        const double cap_err =
            cap_w > 0.0 ? fi->realized_cap_w(cap_w, mod, event) / cap_w : 1.0;
        // The sustained point pins cpu_w to the cap exactly when it binds
        // (Rapl::operating_point), so near-cap power identifies the
        // cap-limited modules.
        const bool cap_limited = cap_w > 0.0 && op.cpu_w >= 0.999 * cap_w;
        if (cap_limited) {
          // CPU power rides the (mis-)enforced cap — an optimistic
          // controller lets the module draw above its allocation — and
          // drift is paid in clock: frequency at fixed power scales as the
          // head-room, err / drift to first order.
          op.cpu_w = cap_w * cap_err;
          op.freq_ghz *= cap_err / drift;
          op.perf_freq_ghz *= cap_err / drift;
        } else {
          const double demand_w = op.cpu_w * drift;
          if (cap_w > 0.0 && demand_w > cap_w * cap_err) {
            // Drift pushed the free-running draw into the realized cap.
            const double clip = cap_w * cap_err / demand_w;
            op.cpu_w = cap_w * cap_err;
            op.freq_ghz *= clip;
            op.perf_freq_ghz *= clip;
          } else {
            // Head-room: the drifted draw fits under the cap unchanged.
            op.cpu_w = demand_w;
          }
        }
        op.dram_w *= drift;  // DRAM power is never capped
      } else {
        // Frequency selection pins the clock, so drift lands entirely on
        // power — the mechanism behind VaFs's budget violations.
        op.cpu_w *= drift;
        op.dram_w *= drift;
      }
    }
    count(ctx, "fault_enforcement_perturbed");
  }
}

void UncappedEnforcementStage::enforce(RunContext& ctx) const {
  require(ctx.runner != nullptr, "enforcement needs a runner");
  require(ctx.workload != nullptr, "enforcement needs a workload");
  const RunConfig& config = ctx.runner->config();
  ctx.ops.assign(ctx.allocation.size(), hw::OperatingPoint{});
  util::parallel_for(
      ctx.allocation.size(),
      [&](std::size_t i) {
        hw::Rapl rapl(ctx.cluster->module(ctx.allocation[i]), config.rapl);
        ctx.ops[i] =
            rapl.operating_point(ctx.workload->profile, config.turbo);
      },
      256);
  // Synthesize the unconstrained solution so the execution stage's metric
  // fill is uniform: alpha 1 at fmax, no binding constraint, no caps.
  BudgetResult budget;
  budget.constrained = false;
  budget.alpha = 1.0;
  budget.target_freq_ghz = util::GigaHertz{ctx.cluster->spec().ladder.fmax()};
  budget.allocations.resize(ctx.allocation.size());
  ctx.budget = std::move(budget);
  ctx.enforcement = Enforcement::kPowerCap;
  ctx.rapl_jitter = false;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void DesExecutionStage::execute(RunContext& ctx) const {
  require(ctx.runner != nullptr, "execution needs a runner");
  require(ctx.workload != nullptr, "execution needs a workload");
  require(ctx.budget.has_value(), "execution needs a solved budget");
  require(ctx.ops.size() == ctx.allocation.size(),
          "execution needs enforced operating points");
  const BudgetResult& budget = *ctx.budget;

  const std::vector<hw::OperatingPoint>* run_ops = &ctx.ops;
  std::vector<hw::OperatingPoint> faulted_ops;
  if (const fault::FaultInjector* fi = active_fault(ctx)) {
    require(ctx.cluster != nullptr, "execution fault seam needs a cluster");
    // Transient events during the run: thermal throttles shave the compute
    // rate, a hard failure restarts the rank's remaining work on a spare at
    // fmin — both expressed as a lower effective performance frequency.
    faulted_ops = ctx.ops;
    const std::uint64_t event = fault_job_event(ctx);
    for (std::size_t i = 0; i < faulted_ops.size(); ++i) {
      const auto mod = static_cast<std::uint64_t>(ctx.allocation[i]);
      const double tmul = fi->throttle_perf_multiplier(
          mod, event,
          static_cast<std::uint32_t>(
              ctx.cluster->device_class(ctx.allocation[i])));
      if (tmul < 1.0) {
        faulted_ops[i].perf_freq_ghz *= tmul;
        count(ctx, "fault_throttle_hit");
      }
    }
    for (std::size_t slot : fi->failed_slots(faulted_ops.size())) {
      // The spare inherits the failed module's class: a dead GPU's work
      // restarts on a spare GPU at *its* ladder floor.
      const double spare_ghz =
          ctx.cluster->module(ctx.allocation[slot]).ladder().fmin();
      faulted_ops[slot].perf_freq_ghz = fi->failed_perf_freq_ghz(
          faulted_ops[slot].perf_freq_ghz, spare_ghz);
      count(ctx, "fault_module_failure");
    }
    run_ops = &faulted_ops;
  }

  RunMetrics m = ctx.runner->execute(*ctx.workload, *run_ops, ctx.rapl_jitter,
                                     ctx.scheme);
  m.budget_w = ctx.budget_w;
  m.alpha = budget.alpha;
  m.target_freq_ghz = budget.target_freq_ghz.value();
  m.constrained = budget.constrained;
  const bool cap = ctx.enforcement == Enforcement::kPowerCap;
  util::parallel_for(
      m.modules.size(),
      [&](std::size_t i) {
        m.modules[i].alloc_module_w = budget.allocations[i].module_w.value();
        if (cap) {
          m.modules[i].cpu_cap_w = budget.allocations[i].cpu_cap_w.value();
        }
      },
      1024);
  ctx.metrics = std::move(m);
}

ResolveOnViolationStage::ResolveOnViolationStage(Enforcement enforcement,
                                                 double guard_frac,
                                                 double undershoot_frac,
                                                 double resolve_penalty_frac)
    : guard_frac_(guard_frac),
      undershoot_frac_(undershoot_frac),
      resolve_penalty_frac_(resolve_penalty_frac),
      enforce_(enforcement) {
  if (!(guard_frac >= 0.0 && guard_frac < 1.0) ||
      !(undershoot_frac >= 0.0 && undershoot_frac < 1.0) ||
      !(resolve_penalty_frac >= 0.0)) {
    throw InvalidArgument("ResolveOnViolationStage: fractions out of range");
  }
}

void ResolveOnViolationStage::execute(RunContext& ctx) const {
  des_.execute(ctx);
  if (ctx.budget_w <= 0.0 || !ctx.budget.has_value() || !ctx.pmt) return;

  const double measured_total_w = ctx.metrics.total_power_w;
  const double target_w = ctx.budget_w * (1.0 - guard_frac_);
  const bool over = measured_total_w > ctx.budget_w;
  const bool under = ctx.budget->constrained &&
                     measured_total_w < target_w * (1.0 - undershoot_frac_);
  if (!over && !under) return;

  // Re-solve against the unchanged PMT at a measured-feedback-corrected
  // target: this round realized measured/target times what the solver asked
  // for, so asking for target^2/measured cancels the gap to first order —
  // whatever mix of drift, sensor error or enforcement error produced it.
  // (Correcting the PMT itself would not converge here: the perturbations
  // are anchored to the calibration-time model, so a truth-corrected table
  // gets the same gap applied twice on re-enforcement.) The half-guard
  // ceiling keeps the corrected ask safely under the budget even where the
  // gap does not reproduce exactly, e.g. across frequency-ladder rungs.
  // One pass only: the correction already reflects reality.
  if (measured_total_w <= 0.0) return;
  const double corrected_w =
      std::min(target_w * (target_w / measured_total_w), ctx.budget_w) *
      (1.0 - 0.5 * guard_frac_);
  ctx.budget =
      ctx.tree != nullptr
          ? solve_budget_tree(*ctx.pmt, *ctx.tree, util::Watts{corrected_w})
          : solve_budget(*ctx.pmt, util::Watts{corrected_w});
  enforce_.enforce(ctx);
  des_.execute(ctx);
  // The correction pass is not free: budget for the stall.
  ctx.metrics.makespan_s *= 1.0 + resolve_penalty_frac_;
  count(ctx, over ? "fault_resolve_overshoot" : "fault_resolve_undershoot");
}

}  // namespace vapb::core
