#include "core/stages.hpp"

#include <string>
#include <utility>

#include "core/calibration_cache.hpp"
#include "core/pmmd.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw InvalidArgument(std::string("pipeline stage: ") + what);
}

void count(RunContext& ctx, const char* counter) {
  if (ctx.telemetry != nullptr) ctx.telemetry->add_counter(counter);
}

}  // namespace

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

void CachedCalibrationStage::calibrate(RunContext& ctx) const {
  require(ctx.cluster != nullptr, "calibration needs a cluster");
  require(ctx.workload != nullptr, "calibration needs a workload");
  if (!ctx.pvt) {
    ctx.pvt = CalibrationCache::global().pvt(
        *ctx.cluster, workloads::pvt_microbench(),
        ctx.cluster->seed().fork("pvt"));
    count(ctx, "pvt_from_cache");
  }
  if (!ctx.test) {
    require(!ctx.allocation.empty(), "calibration needs an allocation");
    ctx.test = CalibrationCache::global().test_run(
        *ctx.cluster, ctx.allocation.front(), *ctx.workload,
        ctx.cluster->seed().fork("test-run").fork(ctx.workload->name));
    count(ctx, "test_run_from_cache");
  }
}

// ---------------------------------------------------------------------------
// Power model
// ---------------------------------------------------------------------------

void NaivePmtStage::model(RunContext& ctx) const {
  require(ctx.cluster != nullptr, "power model needs a cluster");
  ctx.pmt = std::make_shared<const Pmt>(
      constant_pmt(PmtEntry{table_.tdp_cpu_w, table_.tdp_dram_w,
                            table_.min_cpu_w, table_.min_dram_w},
                   ctx.allocation.size(), ctx.cluster->spec().ladder));
}

void AveragedCalibratedPmtStage::model(RunContext& ctx) const {
  require(ctx.cluster != nullptr, "power model needs a cluster");
  require(ctx.pvt && ctx.test, "power model needs calibration artifacts");
  ctx.pmt = std::make_shared<const Pmt>(
      averaged_pmt(calibrate_pmt(*ctx.pvt, *ctx.test, ctx.allocation,
                                 ctx.cluster->spec().ladder)));
}

void CalibratedPmtStage::model(RunContext& ctx) const {
  require(ctx.cluster != nullptr, "power model needs a cluster");
  require(ctx.pvt && ctx.test, "power model needs calibration artifacts");
  ctx.pmt = std::make_shared<const Pmt>(calibrate_pmt(
      *ctx.pvt, *ctx.test, ctx.allocation, ctx.cluster->spec().ladder));
}

void OraclePmtStage::model(RunContext& ctx) const {
  require(ctx.cluster != nullptr, "power model needs a cluster");
  require(ctx.workload != nullptr, "power model needs a workload");
  ctx.pmt = std::make_shared<const Pmt>(
      oracle_pmt(*ctx.cluster, ctx.allocation, *ctx.workload,
                 ctx.seed.fork("oracle-pmt")));
}

CachedPowerModelStage::CachedPowerModelStage(
    std::shared_ptr<const PowerModelStage> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw InvalidArgument("CachedPowerModelStage: null inner stage");
}

void CachedPowerModelStage::model(RunContext& ctx) const {
  require(ctx.cluster != nullptr, "power model needs a cluster");
  require(ctx.workload != nullptr, "power model needs a workload");
  require(ctx.pvt && ctx.test,
          "cached power model needs calibration artifacts");
  require(!ctx.scheme.empty(), "cached power model needs a scheme name");
  ctx.pmt = CalibrationCache::global().scheme_pmt(
      ctx.scheme, *ctx.cluster, ctx.allocation, *ctx.workload, *ctx.pvt,
      *ctx.test, ctx.seed, [&] {
        inner_->model(ctx);
        return Pmt(*ctx.pmt);
      });
}

// ---------------------------------------------------------------------------
// Budget solve
// ---------------------------------------------------------------------------

void AlphaSolveStage::solve(RunContext& ctx) const {
  require(ctx.pmt != nullptr, "budget solve needs a power model");
  ctx.budget = solve_budget(*ctx.pmt, util::Watts{ctx.budget_w});
}

void FixedBudgetStage::solve(RunContext& ctx) const {
  ctx.budget = preset_;
}

// ---------------------------------------------------------------------------
// Enforcement
// ---------------------------------------------------------------------------

void PmmdEnforcementStage::enforce(RunContext& ctx) const {
  require(ctx.runner != nullptr, "enforcement needs a runner");
  require(ctx.workload != nullptr, "enforcement needs a workload");
  require(ctx.budget.has_value(), "enforcement needs a solved budget");
  const BudgetResult& budget = *ctx.budget;
  const std::span<const hw::ModuleId> allocation = ctx.allocation;
  if (budget.allocations.size() != allocation.size()) {
    throw InvalidArgument("run_budgeted: budget covers " +
                          std::to_string(budget.allocations.size()) +
                          " modules, allocation has " +
                          std::to_string(allocation.size()));
  }

  // Materialize the hardware controllers and apply the plan (PMMD region).
  const RunConfig& config = ctx.runner->config();
  std::vector<hw::Rapl> rapls;
  std::vector<hw::CpufreqGovernor> governors;
  rapls.reserve(allocation.size());
  governors.reserve(allocation.size());
  for (auto id : allocation) {
    rapls.emplace_back(ctx.cluster->module(id), config.rapl);
    governors.emplace_back(ctx.cluster->module(id));
  }

  PmmdPlan plan;
  plan.enforcement = enforcement_;
  plan.settings.reserve(allocation.size());
  for (std::size_t i = 0; i < allocation.size(); ++i) {
    PmmdSetting s;
    s.module = allocation[i];
    if (enforcement_ == Enforcement::kPowerCap) {
      s.cpu_cap_w = budget.allocations[i].cpu_cap_w;
    } else {
      s.freq_ghz = budget.target_freq_ghz;
    }
    plan.settings.push_back(s);
  }
  PmmdSession session(plan, rapls, governors);

  // The sustained operating points are value snapshots, so the PMMD region
  // may end here without affecting execution.
  ctx.ops.clear();
  ctx.ops.reserve(allocation.size());
  for (std::size_t i = 0; i < allocation.size(); ++i) {
    if (enforcement_ == Enforcement::kPowerCap) {
      ctx.ops.push_back(rapls[i].operating_point(ctx.workload->profile));
    } else {
      ctx.ops.push_back(governors[i].operating_point(ctx.workload->profile));
    }
  }
  ctx.enforcement = enforcement_;
  ctx.rapl_jitter = enforcement_ == Enforcement::kPowerCap;
}

void UncappedEnforcementStage::enforce(RunContext& ctx) const {
  require(ctx.runner != nullptr, "enforcement needs a runner");
  require(ctx.workload != nullptr, "enforcement needs a workload");
  const RunConfig& config = ctx.runner->config();
  ctx.ops.clear();
  ctx.ops.reserve(ctx.allocation.size());
  for (auto id : ctx.allocation) {
    hw::Rapl rapl(ctx.cluster->module(id), config.rapl);
    ctx.ops.push_back(rapl.operating_point(ctx.workload->profile,
                                           config.turbo));
  }
  // Synthesize the unconstrained solution so the execution stage's metric
  // fill is uniform: alpha 1 at fmax, no binding constraint, no caps.
  BudgetResult budget;
  budget.constrained = false;
  budget.alpha = 1.0;
  budget.target_freq_ghz = util::GigaHertz{ctx.cluster->spec().ladder.fmax()};
  budget.allocations.resize(ctx.allocation.size());
  ctx.budget = std::move(budget);
  ctx.enforcement = Enforcement::kPowerCap;
  ctx.rapl_jitter = false;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void DesExecutionStage::execute(RunContext& ctx) const {
  require(ctx.runner != nullptr, "execution needs a runner");
  require(ctx.workload != nullptr, "execution needs a workload");
  require(ctx.budget.has_value(), "execution needs a solved budget");
  require(ctx.ops.size() == ctx.allocation.size(),
          "execution needs enforced operating points");
  const BudgetResult& budget = *ctx.budget;
  RunMetrics m =
      ctx.runner->execute(*ctx.workload, ctx.ops, ctx.rapl_jitter, ctx.scheme);
  m.budget_w = ctx.budget_w;
  m.alpha = budget.alpha;
  m.target_freq_ghz = budget.target_freq_ghz.value();
  m.constrained = budget.constrained;
  for (std::size_t i = 0; i < m.modules.size(); ++i) {
    m.modules[i].alloc_module_w = budget.allocations[i].module_w.value();
    if (ctx.enforcement == Enforcement::kPowerCap) {
      m.modules[i].cpu_cap_w = budget.allocations[i].cpu_cap_w.value();
    }
  }
  ctx.metrics = std::move(m);
}

}  // namespace vapb::core
