#include "core/dynamic.hpp"

#include <memory>
#include <optional>

#include "core/pipeline.hpp"
#include "core/scheme_registry.hpp"
#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {

namespace {

// Solve-only pipeline: the scheme's power-model stage feeding its budget
// solver, with enforcement and execution left null. The static baselines
// use this to price a workload's budget without running it; the per-phase
// executions then go through Runner::run_budgeted (a FixedBudgetStage
// pipeline), so dynamic reallocation is stage compositions end to end.
BudgetResult solve_phase_budget(Campaign& campaign, SchemeKind scheme,
                                const workloads::Workload& w, double budget_w,
                                util::SeedSequence seed) {
  SchemeDefinition def = SchemeRegistry::global().get(scheme_name(scheme));
  def.calibration = nullptr;  // artifacts provided below
  def.enforcement_stage = nullptr;
  def.execution = nullptr;
  RunContext ctx;
  ctx.cluster = &campaign.cluster();
  ctx.allocation = campaign.allocation();
  ctx.workload = &w;
  ctx.scheme = def.name;
  ctx.budget_w = budget_w;
  ctx.seed = seed;
  ctx.telemetry = campaign.config().telemetry;
  // Non-owning views: the campaign's artifacts outlive this solve.
  const Pvt& pvt = campaign.pvt();
  const TestRunResult& test = campaign.test_run(w);
  ctx.pvt = std::shared_ptr<const Pvt>(std::shared_ptr<const Pvt>(), &pvt);
  ctx.test = std::shared_ptr<const TestRunResult>(
      std::shared_ptr<const TestRunResult>(), &test);
  static_cast<void>(run_pipeline(def, ctx));
  return *ctx.budget;
}

void validate(const PhasedApplication& app) {
  if (app.phases.empty()) {
    throw InvalidArgument("phased application '" + app.name + "' has no phases");
  }
  for (const Phase& p : app.phases) {
    if (p.workload == nullptr || p.iterations <= 0) {
      throw InvalidArgument("phased application '" + app.name +
                            "' has a malformed phase");
    }
  }
}

void accumulate(DynamicRunResult& out, const RunMetrics& m, double alpha,
                double freq_ghz) {
  PhaseOutcome ph;
  ph.workload = m.workload;
  ph.alpha = alpha;
  ph.target_freq_ghz = freq_ghz;
  ph.makespan_s = m.makespan_s;
  ph.avg_power_w = m.total_power_w;
  out.phases.push_back(ph);
  out.makespan_s += m.makespan_s;
  out.energy_j += m.total_power_w * m.makespan_s;
  out.peak_power_w = std::max(out.peak_power_w, m.total_power_w);
}

}  // namespace

workloads::Workload PhasedApplication::blended() const {
  validate(*this);
  workloads::Workload out;
  out.name = name + "-blended";
  out.description = "iteration-weighted blend of " +
                    std::to_string(phases.size()) + " phases";
  double total = 0.0;
  for (const Phase& p : phases) total += p.iterations;
  auto& prof = out.profile;
  prof = hw::PowerProfile{};
  prof.name = out.name;
  out.iter_seconds_nominal = 0.0;
  out.cpu_fraction = 0.0;
  out.runtime_noise_frac = 0.0;
  out.per_rank_noise_frac = 0.0;
  prof.cpu_sensitivity = 0.0;
  prof.dram_sensitivity = 0.0;
  for (const Phase& p : phases) {
    double w = p.iterations / total;
    const auto& pp = p.workload->profile;
    prof.cpu_static_w += w * pp.cpu_static_w;
    prof.cpu_dyn_w_per_ghz += w * pp.cpu_dyn_w_per_ghz;
    prof.dram_static_w += w * pp.dram_static_w;
    prof.dram_dyn_w_per_ghz += w * pp.dram_dyn_w_per_ghz;
    prof.cpu_sensitivity += w * pp.cpu_sensitivity;
    prof.dram_sensitivity += w * pp.dram_sensitivity;
    prof.idiosyncrasy_sd = std::max(prof.idiosyncrasy_sd, pp.idiosyncrasy_sd);
    out.iter_seconds_nominal += w * p.workload->iter_seconds_nominal;
    out.cpu_fraction += w * p.workload->cpu_fraction;
    out.runtime_noise_frac += w * p.workload->runtime_noise_frac;
    out.per_rank_noise_frac += w * p.workload->per_rank_noise_frac;
    out.nominal_freq_ghz = p.workload->nominal_freq_ghz;
  }
  out.comm = workloads::CommPattern::kNone;  // blend is a power model only
  out.default_iterations = static_cast<int>(total);
  return out;
}

DynamicRunResult run_phased_dynamic(Campaign& campaign,
                                    const PhasedApplication& app,
                                    SchemeKind scheme, double budget_w) {
  validate(app);
  DynamicRunResult out;
  for (const Phase& p : app.phases) {
    RunConfig cfg = campaign.config();
    cfg.iterations = p.iterations;
    Runner runner(campaign.cluster(), campaign.allocation(), cfg);
    RunMetrics m = runner.run_scheme(*p.workload, scheme, budget_w,
                                     campaign.pvt(),
                                     campaign.test_run(*p.workload));
    accumulate(out, m, m.alpha, m.target_freq_ghz);
  }
  return out;
}

DynamicRunResult run_phased_static(Campaign& campaign,
                                   const PhasedApplication& app,
                                   SchemeKind scheme, double budget_w) {
  validate(app);
  // One solve against the blended power model...
  workloads::Workload blend = app.blended();
  BudgetResult solved =
      solve_phase_budget(campaign, scheme, blend, budget_w,
                         campaign.cluster().seed().fork("static-blend"));

  // ...applied unchanged to every phase (which executes with its own true
  // power/performance characteristics).
  DynamicRunResult out;
  for (const Phase& p : app.phases) {
    RunConfig cfg = campaign.config();
    cfg.iterations = p.iterations;
    Runner runner(campaign.cluster(), campaign.allocation(), cfg);
    RunMetrics m = runner.run_budgeted(*p.workload, enforcement_of(scheme),
                                       solved, "static-" + app.name, budget_w);
    accumulate(out, m, solved.alpha, solved.target_freq_ghz.value());
  }
  return out;
}

PhasedApplication hpl_like_application(int panels, int update_iters,
                                       int swap_iters) {
  if (panels <= 0 || update_iters <= 0 || swap_iters <= 0) {
    throw InvalidArgument("hpl_like_application: counts must be positive");
  }
  PhasedApplication app;
  app.name = "HPL-like";
  app.phases.reserve(static_cast<std::size_t>(panels) * 2);
  for (int p = 0; p < panels; ++p) {
    app.phases.push_back({&workloads::dgemm(), update_iters});
    app.phases.push_back({&workloads::stream(), swap_iters});
  }
  return app;
}

DynamicRunResult run_phased_static_worstcase(Campaign& campaign,
                                             const PhasedApplication& app,
                                             SchemeKind scheme,
                                             double budget_w) {
  validate(app);
  // Solve every phase, keep the most conservative (lowest-alpha) result.
  std::optional<BudgetResult> binding;
  for (const Phase& p : app.phases) {
    BudgetResult solved =
        solve_phase_budget(campaign, scheme, *p.workload, budget_w,
                           campaign.cluster().seed().fork("static-worst"));
    if (!binding || solved.alpha < binding->alpha) binding = solved;
  }
  DynamicRunResult out;
  for (const Phase& p : app.phases) {
    RunConfig cfg = campaign.config();
    cfg.iterations = p.iterations;
    Runner runner(campaign.cluster(), campaign.allocation(), cfg);
    RunMetrics m =
        runner.run_budgeted(*p.workload, enforcement_of(scheme), *binding,
                            "static-worst-" + app.name, budget_w);
    accumulate(out, m, binding->alpha, binding->target_freq_ghz.value());
  }
  return out;
}

}  // namespace vapb::core
