#include "core/dynamic.hpp"

#include <optional>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {

namespace {

void validate(const PhasedApplication& app) {
  if (app.phases.empty()) {
    throw InvalidArgument("phased application '" + app.name + "' has no phases");
  }
  for (const Phase& p : app.phases) {
    if (p.workload == nullptr || p.iterations <= 0) {
      throw InvalidArgument("phased application '" + app.name +
                            "' has a malformed phase");
    }
  }
}

void accumulate(DynamicRunResult& out, const RunMetrics& m, double alpha,
                double freq_ghz) {
  PhaseOutcome ph;
  ph.workload = m.workload;
  ph.alpha = alpha;
  ph.target_freq_ghz = freq_ghz;
  ph.makespan_s = m.makespan_s;
  ph.avg_power_w = m.total_power_w;
  out.phases.push_back(ph);
  out.makespan_s += m.makespan_s;
  out.energy_j += m.total_power_w * m.makespan_s;
  out.peak_power_w = std::max(out.peak_power_w, m.total_power_w);
}

}  // namespace

workloads::Workload PhasedApplication::blended() const {
  validate(*this);
  workloads::Workload out;
  out.name = name + "-blended";
  out.description = "iteration-weighted blend of " +
                    std::to_string(phases.size()) + " phases";
  double total = 0.0;
  for (const Phase& p : phases) total += p.iterations;
  auto& prof = out.profile;
  prof = hw::PowerProfile{};
  prof.name = out.name;
  out.iter_seconds_nominal = 0.0;
  out.cpu_fraction = 0.0;
  out.runtime_noise_frac = 0.0;
  out.per_rank_noise_frac = 0.0;
  prof.cpu_sensitivity = 0.0;
  prof.dram_sensitivity = 0.0;
  for (const Phase& p : phases) {
    double w = p.iterations / total;
    const auto& pp = p.workload->profile;
    prof.cpu_static_w += w * pp.cpu_static_w;
    prof.cpu_dyn_w_per_ghz += w * pp.cpu_dyn_w_per_ghz;
    prof.dram_static_w += w * pp.dram_static_w;
    prof.dram_dyn_w_per_ghz += w * pp.dram_dyn_w_per_ghz;
    prof.cpu_sensitivity += w * pp.cpu_sensitivity;
    prof.dram_sensitivity += w * pp.dram_sensitivity;
    prof.idiosyncrasy_sd = std::max(prof.idiosyncrasy_sd, pp.idiosyncrasy_sd);
    out.iter_seconds_nominal += w * p.workload->iter_seconds_nominal;
    out.cpu_fraction += w * p.workload->cpu_fraction;
    out.runtime_noise_frac += w * p.workload->runtime_noise_frac;
    out.per_rank_noise_frac += w * p.workload->per_rank_noise_frac;
    out.nominal_freq_ghz = p.workload->nominal_freq_ghz;
  }
  out.comm = workloads::CommPattern::kNone;  // blend is a power model only
  out.default_iterations = static_cast<int>(total);
  return out;
}

DynamicRunResult run_phased_dynamic(Campaign& campaign,
                                    const PhasedApplication& app,
                                    SchemeKind scheme, double budget_w) {
  validate(app);
  DynamicRunResult out;
  for (const Phase& p : app.phases) {
    RunConfig cfg = campaign.config();
    cfg.iterations = p.iterations;
    Runner runner(campaign.cluster(), campaign.allocation(), cfg);
    RunMetrics m = runner.run_scheme(*p.workload, scheme, budget_w,
                                     campaign.pvt(),
                                     campaign.test_run(*p.workload));
    accumulate(out, m, m.alpha, m.target_freq_ghz);
  }
  return out;
}

DynamicRunResult run_phased_static(Campaign& campaign,
                                   const PhasedApplication& app,
                                   SchemeKind scheme, double budget_w) {
  validate(app);
  // One solve against the blended power model...
  workloads::Workload blend = app.blended();
  Pmt pmt = scheme_pmt(scheme, campaign.cluster(), campaign.allocation(),
                       blend, campaign.pvt(), campaign.test_run(blend),
                       campaign.cluster().seed().fork("static-blend"));
  BudgetResult solved = solve_budget(pmt, util::Watts{budget_w});

  // ...applied unchanged to every phase (which executes with its own true
  // power/performance characteristics).
  DynamicRunResult out;
  for (const Phase& p : app.phases) {
    RunConfig cfg = campaign.config();
    cfg.iterations = p.iterations;
    Runner runner(campaign.cluster(), campaign.allocation(), cfg);
    RunMetrics m = runner.run_budgeted(*p.workload, enforcement_of(scheme),
                                       solved, "static-" + app.name, budget_w);
    accumulate(out, m, solved.alpha, solved.target_freq_ghz.value());
  }
  return out;
}

PhasedApplication hpl_like_application(int panels, int update_iters,
                                       int swap_iters) {
  if (panels <= 0 || update_iters <= 0 || swap_iters <= 0) {
    throw InvalidArgument("hpl_like_application: counts must be positive");
  }
  PhasedApplication app;
  app.name = "HPL-like";
  app.phases.reserve(static_cast<std::size_t>(panels) * 2);
  for (int p = 0; p < panels; ++p) {
    app.phases.push_back({&workloads::dgemm(), update_iters});
    app.phases.push_back({&workloads::stream(), swap_iters});
  }
  return app;
}

DynamicRunResult run_phased_static_worstcase(Campaign& campaign,
                                             const PhasedApplication& app,
                                             SchemeKind scheme,
                                             double budget_w) {
  validate(app);
  // Solve every phase, keep the most conservative (lowest-alpha) result.
  std::optional<BudgetResult> binding;
  for (const Phase& p : app.phases) {
    Pmt pmt = scheme_pmt(scheme, campaign.cluster(), campaign.allocation(),
                         *p.workload, campaign.pvt(),
                         campaign.test_run(*p.workload),
                         campaign.cluster().seed().fork("static-worst"));
    BudgetResult solved = solve_budget(pmt, util::Watts{budget_w});
    if (!binding || solved.alpha < binding->alpha) binding = solved;
  }
  DynamicRunResult out;
  for (const Phase& p : app.phases) {
    RunConfig cfg = campaign.config();
    cfg.iterations = p.iterations;
    Runner runner(campaign.cluster(), campaign.allocation(), cfg);
    RunMetrics m =
        runner.run_budgeted(*p.workload, enforcement_of(scheme), *binding,
                            "static-worst-" + app.name, budget_w);
    accumulate(out, m, binding->alpha, binding->target_freq_ghz.value());
  }
  return out;
}

}  // namespace vapb::core
