// Single-module application test runs (paper Section 5, step 2): two cheap
// runs of the target application on one module — at fmax and at fmin — whose
// measured CPU/DRAM power, combined with the PVT, calibrates the
// application-specific Power Model Table.
#pragma once

#include "cluster/cluster.hpp"
#include "util/units.hpp"
#include "workloads/workload.hpp"

namespace vapb::core {

struct TestRunResult {
  hw::ModuleId module = 0;  ///< which module the test ran on
  util::GigaHertz fmax_ghz{};
  util::GigaHertz fmin_ghz{};
  util::Watts cpu_max_w{};   ///< measured CPU power at fmax
  util::Watts dram_max_w{};
  util::Watts cpu_min_w{};   ///< measured CPU power at fmin
  util::Watts dram_min_w{};
};

/// Runs the application on `module` at the ladder's fmax and fmin, measuring
/// power with the architecture's sensor over `measure_seconds` each.
TestRunResult single_module_test_run(const cluster::Cluster& cluster,
                                     hw::ModuleId module,
                                     const workloads::Workload& app,
                                     util::SeedSequence seed,
                                     double measure_seconds = 10.0);

}  // namespace vapb::core
