// Single-module application test runs (paper Section 5, step 2): two cheap
// runs of the target application on one module — at fmax and at fmin — whose
// measured CPU/DRAM power, combined with the PVT, calibrates the
// application-specific Power Model Table.
#pragma once

#include "cluster/cluster.hpp"
#include "workloads/workload.hpp"

namespace vapb::core {

struct TestRunResult {
  hw::ModuleId module = 0;  ///< which module the test ran on
  double fmax_ghz = 0.0;
  double fmin_ghz = 0.0;
  double cpu_max_w = 0.0;   ///< measured CPU power at fmax
  double dram_max_w = 0.0;
  double cpu_min_w = 0.0;   ///< measured CPU power at fmin
  double dram_min_w = 0.0;
};

/// Runs the application on `module` at the ladder's fmax and fmin, measuring
/// power with the architecture's sensor over `measure_seconds` each.
TestRunResult single_module_test_run(const cluster::Cluster& cluster,
                                     hw::ModuleId module,
                                     const workloads::Workload& app,
                                     util::SeedSequence seed,
                                     double measure_seconds = 10.0);

}  // namespace vapb::core
