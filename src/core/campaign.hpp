// Campaign drivers: evaluating workloads x budgets x schemes on a fixed
// module allocation. This is the machinery behind Table 4, Figure 7 and
// Figure 9.
//
// Two layers:
//  * Campaign       — the serial per-cell driver (run_cell / classify /
//                     calibration_error), convenient for interactive use;
//  * CampaignEngine — expands a CampaignSpec into independent jobs and fans
//                     them across a thread pool. Results are bitwise
//                     identical regardless of thread count or scheduling
//                     order: every job derives its RNG streams from the
//                     cluster seed tree and a per-repetition salt, never
//                     from execution order.
//
// Both layers share the process-wide CalibrationCache, so the expensive
// artifacts (PVT, test runs, oracle and calibrated PMTs) are computed once
// per fleet and reused across every run of a sweep.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/calibration_cache.hpp"
#include "core/runner.hpp"
#include "util/telemetry.hpp"

namespace vapb::core {

/// Table 4 cell classification.
enum class CellClass {
  kValid,          ///< "X": power-constrained and runnable
  kUnconstrained,  ///< "•": budget not binding, no improvement possible
  kInfeasible,     ///< "-": cannot run even at fmin
};

std::string cell_class_name(CellClass c);

/// Ground-truth cell classification of a budget against an oracle PMT — the
/// Table 4 convention shared by Campaign, CampaignEngine and the
/// BudgetService.
[[nodiscard]] CellClass classify_cell(const Pmt& truth, double budget_w);

/// The canonical seed forks for the shared calibration artifacts. Every
/// consumer of CalibrationCache::oracle / ::test_run must derive its seeds
/// through these, or cache hits would stop being bit-identical replays.
[[nodiscard]] util::SeedSequence oracle_seed(const cluster::Cluster& cluster,
                                             const workloads::Workload& w);
[[nodiscard]] util::SeedSequence test_run_seed(const cluster::Cluster& cluster,
                                               const workloads::Workload& w);

/// The metrics recorded for a "-" cell: the modules cannot be operated at
/// this budget, so nothing runs (feasible = false, everything else zero).
[[nodiscard]] RunMetrics infeasible_run_metrics(const workloads::Workload& w,
                                                const std::string& scheme,
                                                double budget_w);

/// The staged pipeline of Runner::run_scheme with the power-model stage
/// wrapped in the process-wide CalibrationCache decorator — or replaced
/// outright by `primed_pmt` when one is supplied (e.g. a table restored from
/// a service snapshot; the caller owns the guarantee that it equals what the
/// stage would build). Seeds and cache keys match the uncached path exactly,
/// so the metrics are bitwise identical regardless of which path warmed the
/// cache.
[[nodiscard]] RunMetrics run_scheme_cached(
    const cluster::Cluster& cluster, const Runner& runner,
    const workloads::Workload& w, const std::string& scheme, double budget_w,
    const Pvt& pvt, const TestRunResult& test,
    std::shared_ptr<const Pmt> primed_pmt = nullptr);

struct SchemeOutcome {
  SchemeKind kind;
  RunMetrics metrics;
  /// makespan(Naive)/makespan(this); NaN when Naive itself is infeasible.
  double speedup_vs_naive = 0.0;
};

struct CellResult {
  CellClass cls = CellClass::kValid;
  const RunMetrics* uncapped = nullptr;  ///< owned by the campaign cache
  std::vector<SchemeOutcome> schemes;

  [[nodiscard]] const SchemeOutcome& scheme(SchemeKind kind) const;
};

class Campaign {
 public:
  /// Generates the system PVT with the paper's *STREAM microbenchmark
  /// (override with `microbench` for the PVT-choice ablation).
  Campaign(const cluster::Cluster& cluster,
           std::vector<hw::ModuleId> allocation, RunConfig config = {},
           const workloads::Workload* microbench = nullptr);

  [[nodiscard]] const Pvt& pvt() const { return *pvt_; }
  [[nodiscard]] const Runner& runner() const { return runner_; }
  [[nodiscard]] const cluster::Cluster& cluster() const { return cluster_; }
  [[nodiscard]] const RunConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<hw::ModuleId>& allocation() const {
    return runner_.allocation();
  }

  /// Single-module test run of `w` (cached; uses the first allocated module).
  const TestRunResult& test_run(const workloads::Workload& w);

  /// Oracle PMT of `w` over the allocation (cached).
  const Pmt& oracle(const workloads::Workload& w);

  /// Uncapped baseline run of `w` (cached).
  const RunMetrics& uncapped(const workloads::Workload& w);

  /// Classifies a (workload, budget) cell against the ground truth: compares
  /// the budget with the true fmax/fmin power requirements (oracle PMT).
  CellClass classify(const workloads::Workload& w, double budget_w);

  /// Runs every scheme at the given application budget. Schemes whose own
  /// table makes the budget infeasible produce metrics with feasible=false.
  CellResult run_cell(const workloads::Workload& w, double budget_w,
                      const std::vector<SchemeKind>& schemes = all_schemes());

  /// PVT-calibrated PMT prediction error vs the oracle (Section 5.3).
  double calibration_error(const workloads::Workload& w);

 private:
  const cluster::Cluster& cluster_;
  RunConfig config_;
  Runner runner_;
  std::shared_ptr<const Pvt> pvt_;
  std::map<std::string, std::shared_ptr<const TestRunResult>> test_runs_;
  std::map<std::string, std::shared_ptr<const Pmt>> oracles_;
  std::map<std::string, RunMetrics> baselines_;
};

// ---------------------------------------------------------------------------
// Parallel campaign engine
// ---------------------------------------------------------------------------

/// The cross-product a CampaignEngine expands: every workload at every
/// budget under every scheme, `repetitions` times.
struct CampaignSpec {
  std::vector<const workloads::Workload*> workloads;
  std::vector<double> budgets_w;  ///< application-level budgets [W]
  std::vector<SchemeKind> schemes = all_schemes();
  /// Registry scheme names; when non-empty this takes precedence over
  /// `schemes`, and may name any scheme registered in
  /// SchemeRegistry::global() — including ones added after the fact.
  std::vector<std::string> scheme_names;
  int repetitions = 1;
  /// Base run configuration. `config.run_salt` seeds repetition 0; later
  /// repetitions fork fresh salts from it. A caller-provided
  /// `config.telemetry` sink is not written during the (multi-threaded) run;
  /// the engine merges the aggregated CampaignResult::telemetry into it once
  /// at the end.
  RunConfig config;

  /// The effective scheme names: `scheme_names` when non-empty, otherwise
  /// the names of `schemes`.
  [[nodiscard]] std::vector<std::string> scheme_list() const;

  [[nodiscard]] std::size_t job_count() const {
    const std::size_t n =
        scheme_names.empty() ? schemes.size() : scheme_names.size();
    return workloads.size() * budgets_w.size() * n *
           static_cast<std::size_t>(repetitions > 0 ? repetitions : 0);
  }
};

/// One independent unit of work: a single scheme run of one workload at one
/// budget. `salt` is derived from (spec.config.run_salt, repetition) alone —
/// never from scheduling — so a job's result is a pure function of
/// (cluster, allocation, job).
struct CampaignJob {
  std::size_t index = 0;  ///< dense index in spec expansion order
  const workloads::Workload* workload = nullptr;
  double budget_w = 0.0;
  std::string scheme;  ///< registered scheme name
  int repetition = 0;
  std::uint64_t salt = 0;
};

struct CampaignJobResult {
  CampaignJob job;
  CellClass cls = CellClass::kValid;
  RunMetrics metrics;
  /// makespan(Naive)/makespan(this) at the same (workload, budget,
  /// repetition); NaN when Naive is absent from the spec or infeasible.
  double speedup_vs_naive = 0.0;
};

struct CampaignResult {
  /// One entry per job, in spec expansion order (scheduling-independent).
  std::vector<CampaignJobResult> jobs;
  /// Calibration-cache activity during this run.
  CalibrationCache::Stats cache;
  double elapsed_s = 0.0;
  /// Per-stage timings and counters aggregated over every job. Timings are
  /// observability-only: merge order follows job completion, so the float
  /// sums may differ between runs while the metrics stay bit-identical.
  util::Telemetry telemetry;

  /// Looks up a job result; nullptr when not part of the spec.
  [[nodiscard]] const CampaignJobResult* find(const std::string& workload,
                                              double budget_w,
                                              const std::string& scheme,
                                              int repetition = 0) const;
  [[nodiscard]] const CampaignJobResult* find(const std::string& workload,
                                              double budget_w,
                                              SchemeKind scheme,
                                              int repetition = 0) const;
};

struct CampaignProgress {
  std::size_t completed = 0;
  std::size_t total = 0;
  const CampaignJobResult* job = nullptr;  ///< the job that just finished
};

class CampaignEngine {
 public:
  using ProgressFn = std::function<void(const CampaignProgress&)>;

  /// `threads`: worker count for the job fan-out; 1 runs serially on the
  /// caller, 0 uses hardware_concurrency. The PVT is generated with the
  /// paper's *STREAM microbenchmark unless `microbench` overrides it.
  CampaignEngine(const cluster::Cluster& cluster,
                 std::vector<hw::ModuleId> allocation, std::size_t threads = 0,
                 const workloads::Workload* microbench = nullptr);

  /// Uses a caller-provided PVT (e.g. one loaded from a system file).
  CampaignEngine(const cluster::Cluster& cluster,
                 std::vector<hw::ModuleId> allocation,
                 std::shared_ptr<const Pvt> pvt, std::size_t threads);

  /// Expands `spec` and runs every job. Deterministic: the result depends
  /// only on (cluster, allocation, spec), never on `threads` or scheduling.
  /// `progress` (optional) is invoked after each job completes, serialized
  /// under a lock, in completion order.
  [[nodiscard]] CampaignResult run(const CampaignSpec& spec,
                                   const ProgressFn& progress = {});

  /// Ground-truth cell classification (same convention as
  /// Campaign::classify, sharing the same cached oracle PMTs).
  [[nodiscard]] CellClass classify(const workloads::Workload& w,
                                   double budget_w) const;

  /// The deterministic job expansion of `spec`, in result order.
  [[nodiscard]] static std::vector<CampaignJob> expand(
      const CampaignSpec& spec);

  [[nodiscard]] const Pvt& pvt() const { return *pvt_; }
  [[nodiscard]] std::size_t threads() const { return threads_; }

 private:
  [[nodiscard]] CampaignJobResult run_job(const CampaignJob& job,
                                          const RunConfig& base,
                                          util::Telemetry* telemetry) const;

  const cluster::Cluster& cluster_;
  std::vector<hw::ModuleId> allocation_;
  std::size_t threads_;
  std::shared_ptr<const Pvt> pvt_;
};

/// One row per job: workload, budget, scheme, repetition, classification,
/// solver outputs, metrics and speedup-vs-Naive.
void write_campaign_csv(const CampaignResult& result, std::ostream& out);

/// The same summary as a single JSON object.
void write_campaign_json(const CampaignResult& result, std::ostream& out);

}  // namespace vapb::core
