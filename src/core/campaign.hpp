// Campaign driver: evaluates workloads x budgets x schemes on a fixed module
// allocation, caching the expensive shared artifacts (PVT, single-module
// test runs, uncapped baselines, oracle PMTs). This is the machinery behind
// Table 4, Figure 7 and Figure 9.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/runner.hpp"

namespace vapb::core {

/// Table 4 cell classification.
enum class CellClass {
  kValid,          ///< "X": power-constrained and runnable
  kUnconstrained,  ///< "•": budget not binding, no improvement possible
  kInfeasible,     ///< "-": cannot run even at fmin
};

std::string cell_class_name(CellClass c);

struct SchemeOutcome {
  SchemeKind kind;
  RunMetrics metrics;
  /// makespan(Naive)/makespan(this); NaN when Naive itself is infeasible.
  double speedup_vs_naive = 0.0;
};

struct CellResult {
  CellClass cls = CellClass::kValid;
  const RunMetrics* uncapped = nullptr;  ///< owned by the campaign cache
  std::vector<SchemeOutcome> schemes;

  [[nodiscard]] const SchemeOutcome& scheme(SchemeKind kind) const;
};

class Campaign {
 public:
  /// Generates the system PVT with the paper's *STREAM microbenchmark
  /// (override with `microbench` for the PVT-choice ablation).
  Campaign(const cluster::Cluster& cluster,
           std::vector<hw::ModuleId> allocation, RunConfig config = {},
           const workloads::Workload* microbench = nullptr);

  [[nodiscard]] const Pvt& pvt() const { return pvt_; }
  [[nodiscard]] const Runner& runner() const { return runner_; }
  [[nodiscard]] const cluster::Cluster& cluster() const { return cluster_; }
  [[nodiscard]] const RunConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<hw::ModuleId>& allocation() const {
    return runner_.allocation();
  }

  /// Single-module test run of `w` (cached; uses the first allocated module).
  const TestRunResult& test_run(const workloads::Workload& w);

  /// Oracle PMT of `w` over the allocation (cached).
  const Pmt& oracle(const workloads::Workload& w);

  /// Uncapped baseline run of `w` (cached).
  const RunMetrics& uncapped(const workloads::Workload& w);

  /// Classifies a (workload, budget) cell against the ground truth: compares
  /// the budget with the true fmax/fmin power requirements (oracle PMT).
  CellClass classify(const workloads::Workload& w, double budget_w);

  /// Runs every scheme at the given application budget. Schemes whose own
  /// table makes the budget infeasible produce metrics with feasible=false.
  CellResult run_cell(const workloads::Workload& w, double budget_w,
                      const std::vector<SchemeKind>& schemes = all_schemes());

  /// PVT-calibrated PMT prediction error vs the oracle (Section 5.3).
  double calibration_error(const workloads::Workload& w);

 private:
  const cluster::Cluster& cluster_;
  RunConfig config_;
  Runner runner_;
  Pvt pvt_;
  std::map<std::string, TestRunResult> test_runs_;
  std::map<std::string, Pmt> oracles_;
  std::map<std::string, RunMetrics> baselines_;
};

}  // namespace vapb::core
