// Markdown report generation from campaign results — turns a sweep into the
// kind of per-experiment record EXPERIMENTS.md keeps, programmatically
// (vapbctl's `report` subcommand).
#pragma once

#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace vapb::core {

struct ReportOptions {
  std::string title = "VAPB campaign report";
  /// Cm grid (average W per module) swept for each workload.
  std::vector<double> cm_grid_w = {110, 100, 90, 80, 70, 60, 50};
  /// Schemes to include, in column order.
  std::vector<SchemeKind> schemes = all_schemes();
  bool include_power_table = true;
  bool include_calibration = true;
};

/// Runs the sweep for `apps` on `campaign` and renders a Markdown document:
/// a Table-4-style classification matrix, a speedup table per workload, an
/// optional total-power table with violation flags, and the calibration
/// error summary. Throws InvalidArgument on an empty workload list or grid.
std::string markdown_report(Campaign& campaign,
                            const std::vector<const workloads::Workload*>& apps,
                            const ReportOptions& options = {});

}  // namespace vapb::core
