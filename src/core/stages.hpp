// Concrete stage implementations for the staged budgeting pipeline.
//
// These are the building blocks the paper's six schemes are composed from
// (see scheme_registry.cpp for the compositions). All stages are stateless
// or hold only immutable configuration, so one instance can serve any
// number of concurrent pipeline runs.
#pragma once

#include <memory>

#include "core/pipeline.hpp"
#include "core/schemes.hpp"

namespace vapb::core {

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

/// Fills whatever calibration artifacts the caller did not provide from the
/// process-wide CalibrationCache, with the canonical seed forks: the system
/// PVT (paper's *STREAM microbenchmark) under cluster.seed().fork("pvt") and
/// the single-module test run under .fork("test-run").fork(workload). A
/// pre-populated field is left untouched, so callers holding their own PVT
/// (e.g. one loaded from a file) keep it.
class CachedCalibrationStage final : public CalibrationStage {
 public:
  void calibrate(RunContext& ctx) const override;
};

// ---------------------------------------------------------------------------
// Power model
// ---------------------------------------------------------------------------

/// Naive's application-independent table: TDP maxima, empirical minima,
/// replicated over the allocation.
class NaivePmtStage final : public PowerModelStage {
 public:
  explicit NaivePmtStage(NaiveTable table = {}) : table_(table) {}
  void model(RunContext& ctx) const override;

 private:
  NaiveTable table_;
};

/// Pc's table: the PVT-calibrated PMT collapsed to its fleet average
/// (application-dependent, variation-unaware).
class AveragedCalibratedPmtStage final : public PowerModelStage {
 public:
  void model(RunContext& ctx) const override;
};

/// The paper's variation-aware calibration: single-module test run scaled
/// through the PVT onto every allocated module (VaPc / VaFs).
class CalibratedPmtStage final : public PowerModelStage {
 public:
  void model(RunContext& ctx) const override;
};

/// Perfect calibration: the application measured on every allocated module
/// (VaPcOr / VaFsOr). Draws from ctx.seed.fork("oracle-pmt").
class OraclePmtStage final : public PowerModelStage {
 public:
  void model(RunContext& ctx) const override;
};

/// Decorator that memoizes any power-model stage through the process-wide
/// CalibrationCache, keyed on (scheme name, fleet, allocation, workload, PVT
/// and test-run content, seed) — the campaign engines wrap scheme stages
/// with this so a sweep builds each PMT once.
class CachedPowerModelStage final : public PowerModelStage {
 public:
  explicit CachedPowerModelStage(std::shared_ptr<const PowerModelStage> inner);
  void model(RunContext& ctx) const override;

 private:
  std::shared_ptr<const PowerModelStage> inner_;
};

/// Installs a pre-built PMT instead of modeling one — the snapshot /
/// BudgetService fast path. The caller owns the guarantee that the table is
/// bitwise what the replaced stage would have produced for this context
/// (snapshots record tables built by the canonical stages, so a restored
/// table satisfies it by construction).
class ProvidedPmtStage final : public PowerModelStage {
 public:
  explicit ProvidedPmtStage(std::shared_ptr<const Pmt> pmt);
  void model(RunContext& ctx) const override;

 private:
  std::shared_ptr<const Pmt> pmt_;
};

// ---------------------------------------------------------------------------
// Budget solve
// ---------------------------------------------------------------------------

/// The paper's Eq. 6-9 solve: the largest common frequency coefficient
/// alpha whose predicted total power fits ctx.budget_w.
class AlphaSolveStage final : public BudgetSolveStage {
 public:
  void solve(RunContext& ctx) const override;
};

/// Applies a pre-solved budget unchanged — the static baseline in dynamic
/// reallocation, and the stage behind Runner::run_budgeted.
class FixedBudgetStage final : public BudgetSolveStage {
 public:
  explicit FixedBudgetStage(BudgetResult preset) : preset_(std::move(preset)) {}
  void solve(RunContext& ctx) const override;

 private:
  BudgetResult preset_;
};

/// The robust solve: Eq. 6-9 against a derated budget,
/// budget_w * (1 - guard_frac). The guard band absorbs sensor noise, drift
/// and enforcement error before they become budget violations; the paired
/// ResolveOnViolationStage reclaims the head-room when the guess was too
/// conservative.
class GuardBandSolveStage final : public BudgetSolveStage {
 public:
  explicit GuardBandSolveStage(double guard_frac = 0.04);
  void solve(RunContext& ctx) const override;

  [[nodiscard]] double guard_frac() const { return guard_frac_; }

 private:
  double guard_frac_;
};

// ---------------------------------------------------------------------------
// Enforcement
// ---------------------------------------------------------------------------

/// Applies the solved allocations through a PMMD session (RAPL caps for
/// power capping, cpufreq targets for frequency selection) and records the
/// sustained operating point of every module.
class PmmdEnforcementStage final : public EnforcementStage {
 public:
  explicit PmmdEnforcementStage(Enforcement enforcement)
      : enforcement_(enforcement) {}
  void enforce(RunContext& ctx) const override;

 private:
  Enforcement enforcement_;
};

/// No enforcement: every module runs at its unconstrained operating point
/// (with opportunistic turbo when the runner's config allows it). Fills
/// ctx.budget with the unconstrained solution (alpha 1, target fmax, empty
/// allocations) so the execution stage's metric fill needs no special case.
class UncappedEnforcementStage final : public EnforcementStage {
 public:
  void enforce(RunContext& ctx) const override;
};

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Runs the workload on the discrete-event MPI runtime at the enforced
/// operating points and merges the solver outputs into the metrics.
class DesExecutionStage final : public ExecutionStage {
 public:
  void execute(RunContext& ctx) const override;
};

/// Violation-triggered re-budgeting, the dynamic half of the robust schemes
/// (the static half is GuardBandSolveStage). Executes normally, compares the
/// measured total power against the budget, and on an overshoot — or a
/// wasteful undershoot while constrained — re-solves at a measured-feedback-
/// corrected target (target^2/measured, capped at the half-guard point),
/// re-enforces and re-executes once: the first round's realized/asked gap
/// cancels to first order, whatever mix of drift, sensor or enforcement
/// error produced it. The correction pass costs resolve_penalty_frac of the
/// makespan (the budget stall the paper's dynamic reallocation also pays,
/// Section 6.2).
class ResolveOnViolationStage final : public ExecutionStage {
 public:
  explicit ResolveOnViolationStage(Enforcement enforcement,
                                   double guard_frac = 0.04,
                                   double undershoot_frac = 0.08,
                                   double resolve_penalty_frac = 0.02);
  void execute(RunContext& ctx) const override;

 private:
  double guard_frac_;
  double undershoot_frac_;
  double resolve_penalty_frac_;
  PmmdEnforcementStage enforce_;
  DesExecutionStage des_;
};

}  // namespace vapb::core
