#include "core/test_run.hpp"

#include "hw/sensor.hpp"

namespace vapb::core {

TestRunResult single_module_test_run(const cluster::Cluster& cluster,
                                     hw::ModuleId module,
                                     const workloads::Workload& app,
                                     util::SeedSequence seed,
                                     double measure_seconds) {
  const hw::Module& m = cluster.module(module);
  const double fmax = m.ladder().fmax();
  const double fmin = m.ladder().fmin();
  hw::Sensor sensor(cluster.spec().measurement, seed.fork("test-run", module),
                    app.runtime_noise_frac);

  TestRunResult r;
  r.module = module;
  r.fmax_ghz = util::GigaHertz{fmax};
  r.fmin_ghz = util::GigaHertz{fmin};
  r.cpu_max_w = util::Watts{
      sensor.measure_avg_w(m.cpu_power_w(app.profile, fmax), measure_seconds)};
  r.dram_max_w = util::Watts{
      sensor.measure_avg_w(m.dram_power_w(app.profile, fmax), measure_seconds)};
  r.cpu_min_w = util::Watts{
      sensor.measure_avg_w(m.cpu_power_w(app.profile, fmin), measure_seconds)};
  r.dram_min_w = util::Watts{
      sensor.measure_avg_w(m.dram_power_w(app.profile, fmin), measure_seconds)};
  return r;
}

}  // namespace vapb::core
