// The staged budgeting pipeline — the paper's five-step mitigation recipe
// made explicit (Section 5, Figure 4):
//
//   calibrate -> model -> solve -> enforce -> execute
//
// Each step is a small interface; a scheme is a composition of stage
// implementations (see stages.hpp for the concrete ones and
// scheme_registry.hpp for the named compositions). A typed RunContext is
// threaded through the stages: every stage reads the fields upstream stages
// filled and writes its own. The driver (run_pipeline) owns stage ordering
// and per-stage telemetry; stages own the physics.
//
// Determinism contract: a stage may draw randomness only from ctx.seed
// forks, never from execution order or the clock, so a pipeline run is a
// pure function of (cluster, allocation, workload, scheme, budget, seed,
// salt) — bit-identical to the pre-pipeline monolithic runner.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/budget.hpp"
#include "core/runner.hpp"
#include "util/telemetry.hpp"

namespace vapb::fault {
class FaultInjector;
}  // namespace vapb::fault

namespace vapb::core {

/// The typed state threaded through the five stages. The driver fills the
/// immutable inputs; each stage fills its own output block.
struct RunContext {
  // -- Inputs (set by the driver / caller) ----------------------------------
  const cluster::Cluster* cluster = nullptr;
  /// Required by the enforcement/execution stages; model-only pipelines
  /// (e.g. a standalone PMT build) may leave it null.
  const Runner* runner = nullptr;
  /// The modules granted to the job. Must outlive the pipeline run.
  std::span<const hw::ModuleId> allocation;
  const workloads::Workload* workload = nullptr;
  std::string scheme;        ///< registered scheme name; doubles as run label
  double budget_w = 0.0;     ///< application-level budget (0 = unconstrained)
  /// Optional hierarchical capacity model for the budget solve (not owned,
  /// may be null = flat budgeting). Copied from RunConfig::tree by
  /// Runner::make_context.
  const cluster::PowerTree* tree = nullptr;
  util::SeedSequence seed{0};     ///< the scheme's seed subtree
  util::Telemetry* telemetry = nullptr;  ///< optional per-stage sink (not owned)
  /// Optional fault injector (not owned, may be null). Stages consult it at
  /// their seams; null — or a disabled scenario — leaves every stage on
  /// exactly the unperturbed code path, bit-identical to before faults
  /// existed.
  const fault::FaultInjector* fault = nullptr;

  // -- CalibrationStage outputs ---------------------------------------------
  std::shared_ptr<const Pvt> pvt;
  std::shared_ptr<const TestRunResult> test;
  /// On a heterogeneous fleet: one test run per device class present in the
  /// allocation (indexed by hw::device_class_index; absent classes stay
  /// null). The kCpu slot aliases `test`. Untouched — all null — on
  /// homogeneous fleets, where `test` alone carries the calibration.
  ClassTestRuns class_tests;

  // -- PowerModelStage output -----------------------------------------------
  std::shared_ptr<const Pmt> pmt;

  // -- BudgetSolveStage output ----------------------------------------------
  std::optional<BudgetResult> budget;

  // -- EnforcementStage outputs ---------------------------------------------
  Enforcement enforcement = Enforcement::kPowerCap;
  bool rapl_jitter = false;  ///< model RAPL's dynamic-control clock dither
  std::vector<hw::OperatingPoint> ops;  ///< sustained per-module points

  // -- ExecutionStage output ------------------------------------------------
  RunMetrics metrics;
};

/// Produces the calibration artifacts (system PVT, single-module test run)
/// the power model needs: fills ctx.pvt / ctx.test.
class CalibrationStage {
 public:
  virtual ~CalibrationStage() = default;
  virtual void calibrate(RunContext& ctx) const = 0;
};

/// Builds the scheme's Power Model Table over the allocation: fills ctx.pmt.
class PowerModelStage {
 public:
  virtual ~PowerModelStage() = default;
  virtual void model(RunContext& ctx) const = 0;
};

/// Turns the PMT and the application budget into per-module allocations:
/// fills ctx.budget.
class BudgetSolveStage {
 public:
  virtual ~BudgetSolveStage() = default;
  virtual void solve(RunContext& ctx) const = 0;
};

/// Applies the allocations to the hardware controls and determines the
/// sustained operating points: fills ctx.ops / ctx.rapl_jitter.
class EnforcementStage {
 public:
  virtual ~EnforcementStage() = default;
  virtual void enforce(RunContext& ctx) const = 0;
};

/// Runs the workload on the DES MPI runtime at the enforced operating
/// points and assembles the paper's metrics: fills ctx.metrics.
class ExecutionStage {
 public:
  virtual ~ExecutionStage() = default;
  virtual void execute(RunContext& ctx) const = 0;
};

/// One scheme as a composition of stages. A null stage is skipped by the
/// driver — partial pipelines (e.g. model+solve only, or enforce+execute
/// under a pre-solved budget) are how run_budgeted and dynamic reallocation
/// reuse the machinery.
struct SchemeDefinition {
  std::string name;
  Enforcement enforcement = Enforcement::kPowerCap;
  bool variation_aware = false;
  bool oracle = false;

  std::shared_ptr<const CalibrationStage> calibration;
  std::shared_ptr<const PowerModelStage> power_model;
  std::shared_ptr<const BudgetSolveStage> budget_solve;
  std::shared_ptr<const EnforcementStage> enforcement_stage;
  std::shared_ptr<const ExecutionStage> execution;
};

/// Runs the non-null stages of `def` over `ctx` in pipeline order, timing
/// each into ctx.telemetry (when set) under the stage names "calibrate",
/// "model", "solve", "enforce" and "execute". Returns ctx.metrics.
RunMetrics run_pipeline(const SchemeDefinition& def, RunContext& ctx);

}  // namespace vapb::core
