#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>
#include <ostream>

#include "core/scheme_registry.hpp"
#include "core/stages.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

RunMetrics run_scheme_cached(const cluster::Cluster& cluster,
                             const Runner& runner,
                             const workloads::Workload& w,
                             const std::string& scheme, double budget_w,
                             const Pvt& pvt, const TestRunResult& test,
                             std::shared_ptr<const Pmt> primed_pmt) {
  SchemeDefinition def = SchemeRegistry::global().get(scheme);
  if (primed_pmt) {
    def.power_model = std::make_shared<ProvidedPmtStage>(std::move(primed_pmt));
  } else if (def.power_model) {
    def.power_model = std::make_shared<CachedPowerModelStage>(def.power_model);
  }
  RunContext ctx;
  ctx.cluster = &cluster;
  ctx.runner = &runner;
  ctx.allocation = runner.allocation();
  ctx.workload = &w;
  ctx.scheme = scheme;
  ctx.budget_w = budget_w;
  ctx.seed = Runner::scheme_seed(cluster, w, scheme);
  ctx.telemetry = runner.config().telemetry;
  ctx.fault = runner.config().fault;
  // Non-owning views: the campaign's artifacts outlive the pipeline run.
  ctx.pvt = std::shared_ptr<const Pvt>(std::shared_ptr<const Pvt>(), &pvt);
  ctx.test = std::shared_ptr<const TestRunResult>(
      std::shared_ptr<const TestRunResult>(), &test);
  return run_pipeline(def, ctx);
}

RunMetrics infeasible_run_metrics(const workloads::Workload& w,
                                  const std::string& scheme,
                                  double budget_w) {
  // "-" cell: the modules cannot be operated at this budget; the paper does
  // not run these.
  RunMetrics m;
  m.workload = w.name;
  m.scheme = scheme;
  m.budget_w = budget_w;
  m.feasible = false;
  return m;
}

CellClass classify_cell(const Pmt& truth, double budget_w) {
  const util::Watts budget{budget_w};
  if (budget < truth.total_min_w()) return CellClass::kInfeasible;
  if (budget >= truth.total_max_w()) return CellClass::kUnconstrained;
  return CellClass::kValid;
}

util::SeedSequence oracle_seed(const cluster::Cluster& cluster,
                               const workloads::Workload& w) {
  return cluster.seed().fork("oracle").fork(w.name);
}

util::SeedSequence test_run_seed(const cluster::Cluster& cluster,
                                 const workloads::Workload& w) {
  return cluster.seed().fork("test-run").fork(w.name);
}

std::string cell_class_name(CellClass c) {
  switch (c) {
    case CellClass::kValid:
      return "X";
    case CellClass::kUnconstrained:
      return "unconstrained";
    case CellClass::kInfeasible:
      return "infeasible";
  }
  throw InternalError("unhandled cell class");
}

const SchemeOutcome& CellResult::scheme(SchemeKind kind) const {
  for (const auto& s : schemes) {
    if (s.kind == kind) return s;
  }
  throw InvalidArgument("CellResult: scheme not present: " +
                        scheme_name(kind));
}

Campaign::Campaign(const cluster::Cluster& cluster,
                   std::vector<hw::ModuleId> allocation, RunConfig config,
                   const workloads::Workload* microbench)
    : cluster_(cluster),
      config_(config),
      runner_(cluster, std::move(allocation), config),
      pvt_(CalibrationCache::global().pvt(
          cluster,
          microbench ? *microbench : workloads::pvt_microbench(),
          cluster.seed().fork("pvt"))) {}

const TestRunResult& Campaign::test_run(const workloads::Workload& w) {
  auto it = test_runs_.find(w.name);
  if (it == test_runs_.end()) {
    it = test_runs_
             .emplace(w.name, CalibrationCache::global().test_run(
                                  cluster_, runner_.allocation().front(), w,
                                  test_run_seed(cluster_, w)))
             .first;
  }
  return *it->second;
}

const Pmt& Campaign::oracle(const workloads::Workload& w) {
  auto it = oracles_.find(w.name);
  if (it == oracles_.end()) {
    it = oracles_
             .emplace(w.name, CalibrationCache::global().oracle(
                                  cluster_, runner_.allocation(), w,
                                  oracle_seed(cluster_, w)))
             .first;
  }
  return *it->second;
}

const RunMetrics& Campaign::uncapped(const workloads::Workload& w) {
  auto it = baselines_.find(w.name);
  if (it == baselines_.end()) {
    it = baselines_.emplace(w.name, runner_.run_uncapped(w)).first;
  }
  return it->second;
}

CellClass Campaign::classify(const workloads::Workload& w, double budget_w) {
  return classify_cell(oracle(w), budget_w);
}

CellResult Campaign::run_cell(const workloads::Workload& w, double budget_w,
                              const std::vector<SchemeKind>& schemes) {
  CellResult cell;
  cell.cls = classify(w, budget_w);
  cell.uncapped = &uncapped(w);

  const TestRunResult& test = test_run(w);
  std::optional<double> naive_makespan;
  for (SchemeKind kind : schemes) {
    SchemeOutcome out;
    out.kind = kind;
    if (cell.cls == CellClass::kInfeasible) {
      out.metrics = infeasible_run_metrics(w, scheme_name(kind), budget_w);
    } else {
      out.metrics = run_scheme_cached(cluster_, runner_, w, scheme_name(kind),
                                      budget_w, *pvt_, test);
      if (kind == SchemeKind::kNaive) naive_makespan = out.metrics.makespan_s;
    }
    cell.schemes.push_back(std::move(out));
  }
  for (auto& s : cell.schemes) {
    if (naive_makespan && s.metrics.feasible && s.metrics.makespan_s > 0.0) {
      s.speedup_vs_naive = *naive_makespan / s.metrics.makespan_s;
    } else {
      s.speedup_vs_naive = kNaN;
    }
  }
  return cell;
}

double Campaign::calibration_error(const workloads::Workload& w) {
  Pmt predicted = calibrate_pmt(*pvt_, test_run(w), runner_.allocation(),
                                cluster_.spec().ladder);
  return pmt_prediction_error(predicted, oracle(w));
}

// ---------------------------------------------------------------------------
// Parallel campaign engine
// ---------------------------------------------------------------------------

CampaignEngine::CampaignEngine(const cluster::Cluster& cluster,
                               std::vector<hw::ModuleId> allocation,
                               std::size_t threads,
                               const workloads::Workload* microbench)
    : CampaignEngine(cluster, std::move(allocation),
                     CalibrationCache::global().pvt(
                         cluster,
                         microbench ? *microbench
                                    : workloads::pvt_microbench(),
                         cluster.seed().fork("pvt")),
                     threads) {}

CampaignEngine::CampaignEngine(const cluster::Cluster& cluster,
                               std::vector<hw::ModuleId> allocation,
                               std::shared_ptr<const Pvt> pvt,
                               std::size_t threads)
    : cluster_(cluster),
      allocation_(std::move(allocation)),
      threads_(threads ? threads
                       : std::max<std::size_t>(
                             1, std::thread::hardware_concurrency())),
      pvt_(std::move(pvt)) {
  if (allocation_.empty()) {
    throw InvalidArgument("CampaignEngine: empty allocation");
  }
  VAPB_REQUIRE_MSG(pvt_ != nullptr, "CampaignEngine: null PVT");
}

std::vector<std::string> CampaignSpec::scheme_list() const {
  if (!scheme_names.empty()) return scheme_names;
  std::vector<std::string> names;
  names.reserve(schemes.size());
  for (SchemeKind kind : schemes) names.push_back(scheme_name(kind));
  return names;
}

std::vector<CampaignJob> CampaignEngine::expand(const CampaignSpec& spec) {
  std::vector<CampaignJob> jobs;
  jobs.reserve(spec.job_count());
  const std::uint64_t base = spec.config.run_salt;
  const std::vector<std::string> schemes = spec.scheme_list();
  for (const workloads::Workload* w : spec.workloads) {
    if (w == nullptr) throw InvalidArgument("CampaignSpec: null workload");
    for (double budget_w : spec.budgets_w) {
      for (const std::string& scheme : schemes) {
        for (int rep = 0; rep < spec.repetitions; ++rep) {
          CampaignJob job;
          job.index = jobs.size();
          job.workload = w;
          job.budget_w = budget_w;
          job.scheme = scheme;
          job.repetition = rep;
          // Repetition 0 keeps the base salt, so it reproduces a direct
          // Runner::run_scheme at spec.config bit-for-bit; later repetitions
          // fork fresh, order-independent noise streams.
          job.salt = rep == 0 ? base
                              : util::SeedSequence(base)
                                    .fork("campaign-rep",
                                          static_cast<std::uint64_t>(rep))
                                    .value();
          jobs.push_back(job);
        }
      }
    }
  }
  return jobs;
}

CellClass CampaignEngine::classify(const workloads::Workload& w,
                                   double budget_w) const {
  std::shared_ptr<const Pmt> truth = CalibrationCache::global().oracle(
      cluster_, allocation_, w, oracle_seed(cluster_, w));
  return classify_cell(*truth, budget_w);
}

CampaignJobResult CampaignEngine::run_job(const CampaignJob& job,
                                          const RunConfig& base,
                                          util::Telemetry* telemetry) const {
  CalibrationCache& cache = CalibrationCache::global();
  const workloads::Workload& w = *job.workload;

  CampaignJobResult out;
  out.job = job;
  out.speedup_vs_naive = kNaN;

  std::shared_ptr<const Pmt> truth =
      cache.oracle(cluster_, allocation_, w, oracle_seed(cluster_, w));
  out.cls = classify_cell(*truth, job.budget_w);
  if (out.cls == CellClass::kInfeasible) {
    out.metrics = infeasible_run_metrics(w, job.scheme, job.budget_w);
    if (telemetry != nullptr) telemetry->add_counter("jobs_infeasible");
    return out;
  }

  std::shared_ptr<const TestRunResult> test = cache.test_run(
      cluster_, allocation_.front(), w, test_run_seed(cluster_, w));
  RunConfig cfg = base;
  cfg.run_salt = job.salt;
  // Each job writes its own sink; the engine merges them under a lock.
  cfg.telemetry = telemetry;
  Runner runner(cluster_, allocation_, cfg);
  out.metrics = run_scheme_cached(cluster_, runner, w, job.scheme,
                                  job.budget_w, *pvt_, *test);
  return out;
}

CampaignResult CampaignEngine::run(const CampaignSpec& spec,
                                   const ProgressFn& progress) {
  if (spec.workloads.empty() || spec.budgets_w.empty() ||
      (spec.schemes.empty() && spec.scheme_names.empty()) ||
      spec.repetitions < 1) {
    throw InvalidArgument(
        "CampaignSpec needs workloads, budgets, schemes and repetitions >= 1");
  }
  // vapb-lint: allow(determinism-taint): elapsed_s is observability only
  const auto t0 = std::chrono::steady_clock::now();
  const CalibrationCache::Stats before = CalibrationCache::global().stats();
  const std::vector<CampaignJob> jobs = expand(spec);

  CampaignResult result;
  result.jobs.resize(jobs.size());
  std::mutex progress_mutex;
  std::mutex telemetry_mutex;
  std::size_t completed = 0;
  auto run_one = [&](std::size_t k) {
    util::Telemetry local;
    result.jobs[k] = run_job(jobs[k], spec.config, &local);
    local.add_counter("jobs");
    {
      std::lock_guard lock(telemetry_mutex);
      result.telemetry.merge(local);
    }
    if (progress) {
      std::lock_guard lock(progress_mutex);
      CampaignProgress p;
      p.completed = ++completed;
      p.total = jobs.size();
      p.job = &result.jobs[k];
      progress(p);
    }
  };
  if (threads_ <= 1 || jobs.size() <= 1) {
    for (std::size_t k = 0; k < jobs.size(); ++k) run_one(k);
  } else {
    util::ThreadPool pool(std::min(threads_, jobs.size()));
    util::parallel_for(pool, jobs.size(), run_one, /*grain=*/1);
  }

  // Speedups vs the Naive run of the same (workload, budget, repetition).
  std::map<std::string, double> naive_makespans;
  auto cell_key = [](const CampaignJobResult& r) {
    return r.metrics.workload + '/' + std::to_string(r.job.budget_w) + '/' +
           std::to_string(r.job.repetition);
  };
  for (const CampaignJobResult& r : result.jobs) {
    if (r.job.scheme == "Naive" && r.metrics.feasible &&
        r.metrics.makespan_s > 0.0) {
      naive_makespans[cell_key(r)] = r.metrics.makespan_s;
    }
  }
  for (CampaignJobResult& r : result.jobs) {
    auto it = naive_makespans.find(cell_key(r));
    if (it != naive_makespans.end() && r.metrics.feasible &&
        r.metrics.makespan_s > 0.0) {
      r.speedup_vs_naive = it->second / r.metrics.makespan_s;
    } else {
      r.speedup_vs_naive = kNaN;
    }
  }

  const CalibrationCache::Stats after = CalibrationCache::global().stats();
  result.cache.hits = after.hits - before.hits;
  result.cache.misses = after.misses - before.misses;
  result.cache.entries = after.entries;
  result.cache.evictions = after.evictions - before.evictions;
  result.cache.capacity = after.capacity;
  result.telemetry.add_counter("cache_hits", result.cache.hits);
  result.telemetry.add_counter("cache_misses", result.cache.misses);
  result.telemetry.add_counter("cache_evictions", result.cache.evictions);
  result.telemetry.add_counter("cache_entries", result.cache.entries);
  result.elapsed_s =
      // vapb-lint: allow(determinism-taint): elapsed_s is observability only
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (spec.config.telemetry != nullptr) {
    spec.config.telemetry->merge(result.telemetry);
  }
  return result;
}

const CampaignJobResult* CampaignResult::find(const std::string& workload,
                                              double budget_w,
                                              const std::string& scheme,
                                              int repetition) const {
  for (const CampaignJobResult& r : jobs) {
    if (r.job.workload->name == workload && r.job.budget_w == budget_w &&
        r.job.scheme == scheme && r.job.repetition == repetition) {
      return &r;
    }
  }
  return nullptr;
}

const CampaignJobResult* CampaignResult::find(const std::string& workload,
                                              double budget_w,
                                              SchemeKind scheme,
                                              int repetition) const {
  return find(workload, budget_w, scheme_name(scheme), repetition);
}

namespace {

void write_double(std::ostream& out, double v, bool json) {
  if (std::isnan(v)) {
    out << (json ? "null" : "nan");
  } else {
    out << v;
  }
}

void write_job_fields(std::ostream& out, const CampaignJobResult& r,
                      bool json) {
  const bool has_modules = r.metrics.feasible && !r.metrics.modules.empty();
  const double vp = has_modules ? r.metrics.vp() : kNaN;
  const double vf = has_modules ? r.metrics.vf() : kNaN;
  const char* q = json ? "\"" : "";
  if (json) out << "{\"workload\":";
  out << q << r.metrics.workload << q << ',';
  if (json) out << "\"budget_w\":";
  out << r.job.budget_w << ',';
  if (json) out << "\"scheme\":";
  out << q << r.job.scheme << q << ',';
  if (json) out << "\"repetition\":";
  out << r.job.repetition << ',';
  if (json) out << "\"cell\":";
  out << q << cell_class_name(r.cls) << q << ',';
  if (json) out << "\"feasible\":";
  out << (r.metrics.feasible ? "true" : "false") << ',';
  if (json) out << "\"constrained\":";
  out << (r.metrics.constrained ? "true" : "false") << ',';
  if (json) out << "\"alpha\":";
  write_double(out, r.metrics.feasible ? r.metrics.alpha : kNaN, json);
  out << ',';
  if (json) out << "\"target_freq_ghz\":";
  write_double(out, r.metrics.feasible ? r.metrics.target_freq_ghz : kNaN,
               json);
  out << ',';
  if (json) out << "\"makespan_s\":";
  write_double(out, r.metrics.feasible ? r.metrics.makespan_s : kNaN, json);
  out << ',';
  if (json) out << "\"total_power_w\":";
  write_double(out, r.metrics.feasible ? r.metrics.total_power_w : kNaN,
               json);
  out << ',';
  if (json) out << "\"vp\":";
  write_double(out, vp, json);
  out << ',';
  if (json) out << "\"vf\":";
  write_double(out, vf, json);
  out << ',';
  if (json) out << "\"speedup_vs_naive\":";
  write_double(out, r.speedup_vs_naive, json);
  if (json) out << '}';
}

}  // namespace

void write_campaign_csv(const CampaignResult& result, std::ostream& out) {
  const auto saved = out.precision(17);
  out << "workload,budget_w,scheme,repetition,cell,feasible,constrained,"
         "alpha,target_freq_ghz,makespan_s,total_power_w,vp,vf,"
         "speedup_vs_naive\n";
  for (const CampaignJobResult& r : result.jobs) {
    write_job_fields(out, r, /*json=*/false);
    out << '\n';
  }
  out.precision(saved);
}

void write_campaign_json(const CampaignResult& result, std::ostream& out) {
  const auto saved = out.precision(17);
  out << "{\"elapsed_s\":" << result.elapsed_s << ",\"cache\":{\"hits\":"
      << result.cache.hits << ",\"misses\":" << result.cache.misses
      << ",\"entries\":" << result.cache.entries << "},\"jobs\":[";
  for (std::size_t k = 0; k < result.jobs.size(); ++k) {
    if (k) out << ',';
    write_job_fields(out, result.jobs[k], /*json=*/true);
  }
  out << "]}\n";
  out.precision(saved);
}

}  // namespace vapb::core
