#include "core/campaign.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "workloads/catalog.hpp"

namespace vapb::core {

std::string cell_class_name(CellClass c) {
  switch (c) {
    case CellClass::kValid:
      return "X";
    case CellClass::kUnconstrained:
      return "unconstrained";
    case CellClass::kInfeasible:
      return "infeasible";
  }
  throw InternalError("unhandled cell class");
}

const SchemeOutcome& CellResult::scheme(SchemeKind kind) const {
  for (const auto& s : schemes) {
    if (s.kind == kind) return s;
  }
  throw InvalidArgument("CellResult: scheme not present: " +
                        scheme_name(kind));
}

Campaign::Campaign(const cluster::Cluster& cluster,
                   std::vector<hw::ModuleId> allocation, RunConfig config,
                   const workloads::Workload* microbench)
    : cluster_(cluster),
      config_(config),
      runner_(cluster, std::move(allocation), config),
      pvt_(Pvt::generate(cluster,
                         microbench ? *microbench
                                    : workloads::pvt_microbench(),
                         cluster.seed().fork("pvt"))) {}

const TestRunResult& Campaign::test_run(const workloads::Workload& w) {
  auto it = test_runs_.find(w.name);
  if (it == test_runs_.end()) {
    TestRunResult r =
        single_module_test_run(cluster_, runner_.allocation().front(), w,
                               cluster_.seed().fork("test-run").fork(w.name));
    it = test_runs_.emplace(w.name, r).first;
  }
  return it->second;
}

const Pmt& Campaign::oracle(const workloads::Workload& w) {
  auto it = oracles_.find(w.name);
  if (it == oracles_.end()) {
    it = oracles_
             .emplace(w.name,
                      oracle_pmt(cluster_, runner_.allocation(), w,
                                 cluster_.seed().fork("oracle").fork(w.name)))
             .first;
  }
  return it->second;
}

const RunMetrics& Campaign::uncapped(const workloads::Workload& w) {
  auto it = baselines_.find(w.name);
  if (it == baselines_.end()) {
    it = baselines_.emplace(w.name, runner_.run_uncapped(w)).first;
  }
  return it->second;
}

CellClass Campaign::classify(const workloads::Workload& w, double budget_w) {
  const Pmt& truth = oracle(w);
  if (budget_w < truth.total_min_w()) return CellClass::kInfeasible;
  if (budget_w >= truth.total_max_w()) return CellClass::kUnconstrained;
  return CellClass::kValid;
}

CellResult Campaign::run_cell(const workloads::Workload& w, double budget_w,
                              const std::vector<SchemeKind>& schemes) {
  CellResult cell;
  cell.cls = classify(w, budget_w);
  cell.uncapped = &uncapped(w);

  const TestRunResult& test = test_run(w);
  std::optional<double> naive_makespan;
  for (SchemeKind kind : schemes) {
    SchemeOutcome out;
    out.kind = kind;
    if (cell.cls == CellClass::kInfeasible) {
      // "-" cell: the modules cannot be operated at this budget; the paper
      // does not run these.
      out.metrics.workload = w.name;
      out.metrics.scheme = scheme_name(kind);
      out.metrics.budget_w = budget_w;
      out.metrics.feasible = false;
    } else {
      out.metrics = runner_.run_scheme(w, kind, budget_w, pvt_, test);
      if (kind == SchemeKind::kNaive) naive_makespan = out.metrics.makespan_s;
    }
    cell.schemes.push_back(std::move(out));
  }
  for (auto& s : cell.schemes) {
    if (naive_makespan && s.metrics.feasible && s.metrics.makespan_s > 0.0) {
      s.speedup_vs_naive = *naive_makespan / s.metrics.makespan_s;
    } else {
      s.speedup_vs_naive = std::numeric_limits<double>::quiet_NaN();
    }
  }
  return cell;
}

double Campaign::calibration_error(const workloads::Workload& w) {
  Pmt predicted = calibrate_pmt(pvt_, test_run(w), runner_.allocation(),
                                cluster_.spec().ladder);
  return pmt_prediction_error(predicted, oracle(w));
}

}  // namespace vapb::core
