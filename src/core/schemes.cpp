// The SchemeKind enum survives only as a thin alias layer over the
// SchemeRegistry: names and composition live in scheme_registry.cpp, and
// these helpers resolve through it so the registry is the single source of
// truth for a scheme's enforcement/awareness/oracle metadata.
#include "core/schemes.hpp"

#include <memory>

#include "core/scheme_registry.hpp"
#include "core/stages.hpp"
#include "util/error.hpp"

namespace vapb::core {

Enforcement enforcement_of(SchemeKind kind) {
  return SchemeRegistry::global().get(scheme_name(kind)).enforcement;
}

bool is_variation_aware(SchemeKind kind) {
  return SchemeRegistry::global().get(scheme_name(kind)).variation_aware;
}

bool is_oracle(SchemeKind kind) {
  return SchemeRegistry::global().get(scheme_name(kind)).oracle;
}

std::string scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNaive:
      return "Naive";
    case SchemeKind::kPc:
      return "Pc";
    case SchemeKind::kVaPcOr:
      return "VaPcOr";
    case SchemeKind::kVaPc:
      return "VaPc";
    case SchemeKind::kVaFsOr:
      return "VaFsOr";
    case SchemeKind::kVaFs:
      return "VaFs";
  }
  throw InternalError("unhandled scheme");
}

std::vector<SchemeKind> all_schemes() {
  return {SchemeKind::kNaive,  SchemeKind::kPc,   SchemeKind::kVaPcOr,
          SchemeKind::kVaPc,   SchemeKind::kVaFsOr, SchemeKind::kVaFs};
}

Pmt scheme_pmt(SchemeKind kind, const cluster::Cluster& cluster,
               std::span<const hw::ModuleId> allocation,
               const workloads::Workload& app, const Pvt& pvt,
               const TestRunResult& test, util::SeedSequence seed,
               const NaiveTable& naive) {
  RunContext ctx;
  ctx.cluster = &cluster;
  ctx.allocation = allocation;
  ctx.workload = &app;
  ctx.scheme = scheme_name(kind);
  ctx.seed = seed;
  // Non-owning views: the caller's artifacts outlive this call.
  ctx.pvt = std::shared_ptr<const Pvt>(std::shared_ptr<const Pvt>(), &pvt);
  ctx.test = std::shared_ptr<const TestRunResult>(
      std::shared_ptr<const TestRunResult>(), &test);
  std::shared_ptr<const PowerModelStage> stage;
  if (kind == SchemeKind::kNaive) {
    // The registry's Naive uses the default table; honor a custom one here.
    stage = std::make_shared<NaivePmtStage>(naive);
  } else {
    stage = SchemeRegistry::global().get(ctx.scheme).power_model;
  }
  stage->model(ctx);
  return Pmt(*ctx.pmt);
}

}  // namespace vapb::core
