#include "core/schemes.hpp"

#include "util/error.hpp"

namespace vapb::core {

Enforcement enforcement_of(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNaive:
    case SchemeKind::kPc:
    case SchemeKind::kVaPc:
    case SchemeKind::kVaPcOr:
      return Enforcement::kPowerCap;
    case SchemeKind::kVaFs:
    case SchemeKind::kVaFsOr:
      return Enforcement::kFreqSelect;
  }
  throw InternalError("unhandled scheme");
}

bool is_variation_aware(SchemeKind kind) {
  return kind == SchemeKind::kVaPc || kind == SchemeKind::kVaPcOr ||
         kind == SchemeKind::kVaFs || kind == SchemeKind::kVaFsOr;
}

bool is_oracle(SchemeKind kind) {
  return kind == SchemeKind::kVaPcOr || kind == SchemeKind::kVaFsOr;
}

std::string scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNaive:
      return "Naive";
    case SchemeKind::kPc:
      return "Pc";
    case SchemeKind::kVaPcOr:
      return "VaPcOr";
    case SchemeKind::kVaPc:
      return "VaPc";
    case SchemeKind::kVaFsOr:
      return "VaFsOr";
    case SchemeKind::kVaFs:
      return "VaFs";
  }
  throw InternalError("unhandled scheme");
}

std::vector<SchemeKind> all_schemes() {
  return {SchemeKind::kNaive,  SchemeKind::kPc,   SchemeKind::kVaPcOr,
          SchemeKind::kVaPc,   SchemeKind::kVaFsOr, SchemeKind::kVaFs};
}

Pmt scheme_pmt(SchemeKind kind, const cluster::Cluster& cluster,
               std::span<const hw::ModuleId> allocation,
               const workloads::Workload& app, const Pvt& pvt,
               const TestRunResult& test, util::SeedSequence seed,
               const NaiveTable& naive) {
  const auto& ladder = cluster.spec().ladder;
  switch (kind) {
    case SchemeKind::kNaive:
      return constant_pmt(PmtEntry{naive.tdp_cpu_w, naive.tdp_dram_w,
                                   naive.min_cpu_w, naive.min_dram_w},
                          allocation.size(), ladder);
    case SchemeKind::kPc:
      return averaged_pmt(calibrate_pmt(pvt, test, allocation, ladder));
    case SchemeKind::kVaPc:
    case SchemeKind::kVaFs:
      return calibrate_pmt(pvt, test, allocation, ladder);
    case SchemeKind::kVaPcOr:
    case SchemeKind::kVaFsOr:
      return oracle_pmt(cluster, allocation, app, seed.fork("oracle-pmt"));
  }
  throw InternalError("unhandled scheme");
}

}  // namespace vapb::core
