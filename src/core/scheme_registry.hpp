// String-keyed registry of scheme definitions — the single place a power
// allocation scheme is named and composed from pipeline stages.
//
// The six paper schemes are pre-registered in the process-wide instance in
// Figure 7's legend order; adding a new scheme is one `add()` call with a
// factory that composes existing (or new) stages. Everything downstream —
// Runner, the campaign engines, vapbctl — resolves schemes by name through
// this registry, so a registered scheme needs no dispatch edits anywhere.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"

namespace vapb::core {

class SchemeRegistry {
 public:
  /// Builds a fresh SchemeDefinition. Factories run on every get() so
  /// definitions may hold per-lookup state, though the built-ins are
  /// stateless and shared.
  using Factory = std::function<SchemeDefinition()>;

  SchemeRegistry() = default;
  SchemeRegistry(const SchemeRegistry&) = delete;
  SchemeRegistry& operator=(const SchemeRegistry&) = delete;

  /// The process-wide instance, pre-seeded with the paper's six schemes.
  static SchemeRegistry& global();

  /// Registers `factory` under `name`. Throws InvalidArgument on an empty
  /// name, a null factory, or a name already registered.
  void add(std::string name, Factory factory);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Resolves `name` to its definition. Throws InvalidArgument naming every
  /// registered scheme when `name` is unknown — a CLI typo surfaces the
  /// valid spellings, closest (by edit distance) first.
  [[nodiscard]] SchemeDefinition get(std::string_view name) const;

  /// Registered names in registration order (built-ins first, in Figure 7's
  /// legend order).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Removes every registration. The process-wide instance keeps its
  /// built-ins for the life of the process; this exists so tests can drive a
  /// local registry through its empty state.
  void clear();

  /// Registered names ordered by edit distance to `name` (ties by
  /// registration order) — the "did you mean" list get() embeds in its
  /// unknown-scheme error.
  [[nodiscard]] std::vector<std::string> suggestions(
      std::string_view name) const;

 private:
  /// suggestions() with mutex_ already held (get() builds its error inside
  /// the lock).
  [[nodiscard]] std::vector<std::string> suggest_locked(
      std::string_view name) const;

  mutable std::mutex mutex_;
  std::vector<std::string> order_;
  std::map<std::string, Factory, std::less<>> factories_;
};

}  // namespace vapb::core
