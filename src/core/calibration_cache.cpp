#include "core/calibration_cache.hpp"

#include <bit>
#include <functional>
#include <future>
#include <list>
#include <sstream>

#include "util/error.hpp"

namespace vapb::core {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t mix(std::uint64_t h, double v) {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t hash_allocation(std::span<const hw::ModuleId> allocation) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (hw::ModuleId id : allocation) h = mix(h, std::uint64_t{id});
  return h;
}

std::uint64_t hash_pvt(const Pvt& pvt) {
  std::uint64_t h = util::fnv1a(pvt.microbench_name());
  for (const PvtEntry& e : pvt.entries()) {
    h = mix(h, e.cpu_max);
    h = mix(h, e.dram_max);
    h = mix(h, e.cpu_min);
    h = mix(h, e.dram_min);
  }
  return h;
}

std::uint64_t hash_test(const TestRunResult& t) {
  std::uint64_t h = mix(0xcbf29ce484222325ULL, std::uint64_t{t.module});
  for (double v :
       {t.fmax_ghz.value(), t.fmin_ghz.value(), t.cpu_max_w.value(),
        t.dram_max_w.value(), t.cpu_min_w.value(), t.dram_min_w.value()}) {
    h = mix(h, v);
  }
  return h;
}

std::string key_of(std::initializer_list<std::uint64_t> parts) {
  std::ostringstream os;
  os << std::hex;
  for (std::uint64_t p : parts) os << p << '/';
  return os.str();
}

}  // namespace

struct CalibrationCache::Impl {
  template <typename T>
  using Slot = std::shared_future<std::shared_ptr<const T>>;

  // Entry recency is a single list across the three artifact maps: the key
  // prefix ("pvt/", "test/", "oracle/", "pmt/") routes an evicted key back
  // to its map. Front = most recently used.
  template <typename T>
  struct Entry {
    Slot<T> slot;
    std::list<std::string>::iterator lru;
  };

  mutable std::mutex mutex;
  std::map<std::string, Entry<Pvt>> pvts;
  std::map<std::string, Entry<TestRunResult>> test_runs;
  std::map<std::string, Entry<Pmt>> pmts;
  std::list<std::string> lru;
  std::size_t capacity = 0;  // 0 = unbounded
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  std::size_t population() const {
    return pvts.size() + test_runs.size() + pmts.size();
  }

  // Drops the key from whichever map owns it (dispatch on the key prefix the
  // public methods stamp) and from the recency list.
  void erase_key(const std::string& key) {
    auto drop = [&](auto& slots) {
      auto it = slots.find(key);
      if (it == slots.end()) return false;
      lru.erase(it->second.lru);
      slots.erase(it);
      return true;
    };
    if (!drop(pvts) && !drop(test_runs) && !drop(pmts)) return;
  }

  // Evicts least-recently-used entries until the population fits the
  // capacity. Requires the lock to be held.
  void enforce_capacity() {
    if (capacity == 0) return;
    while (population() > capacity && !lru.empty()) {
      erase_key(lru.back());
      ++evictions;
    }
  }

  // Returns the entry for `key`, computing it at most once process-wide
  // (per residency: a bounded cache may recompute after eviction, bitwise
  // identically). Concurrent callers block on the computing thread's
  // shared_future. A throwing maker propagates to every waiter and the
  // entry is dropped so a later call can retry.
  template <typename T>
  std::shared_ptr<const T> get_or_compute(
      std::map<std::string, Entry<T>>& slots, const std::string& key,
      const std::function<T()>& make) {
    std::promise<std::shared_ptr<const T>> promise;
    Slot<T> slot;
    bool compute = false;
    {
      std::lock_guard lock(mutex);
      auto it = slots.find(key);
      if (it == slots.end()) {
        ++misses;
        compute = true;
        lru.push_front(key);
        it = slots
                 .emplace(key, Entry<T>{promise.get_future().share(),
                                        lru.begin()})
                 .first;
        // The fresh entry sits at the list front, so it survives even a
        // capacity-1 cache.
        enforce_capacity();
      } else {
        ++hits;
        lru.splice(lru.begin(), lru, it->second.lru);
      }
      slot = it->second.slot;
    }
    if (compute) {
      try {
        promise.set_value(std::make_shared<const T>(make()));
      } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard lock(mutex);
        erase_key(key);
      }
    }
    return slot.get();
  }
};

CalibrationCache::CalibrationCache() : impl_(std::make_unique<Impl>()) {}

CalibrationCache::~CalibrationCache() = default;

CalibrationCache& CalibrationCache::global() {
  static CalibrationCache cache;
  return cache;
}

std::shared_ptr<const Pvt> CalibrationCache::pvt(
    const cluster::Cluster& cluster, const workloads::Workload& micro,
    util::SeedSequence seed, double measure_seconds) {
  std::string key =
      "pvt/" + micro.name + '/' +
      key_of({cluster.fingerprint(), seed.value(),
              std::bit_cast<std::uint64_t>(measure_seconds)});
  return impl_->get_or_compute<Pvt>(impl_->pvts, key, [&] {
    return Pvt::generate(cluster, micro, seed, measure_seconds);
  });
}

std::shared_ptr<const TestRunResult> CalibrationCache::test_run(
    const cluster::Cluster& cluster, hw::ModuleId module,
    const workloads::Workload& app, util::SeedSequence seed,
    double measure_seconds) {
  std::string key =
      "test/" + app.name + '/' +
      key_of({cluster.fingerprint(), std::uint64_t{module}, seed.value(),
              std::bit_cast<std::uint64_t>(measure_seconds)});
  return impl_->get_or_compute<TestRunResult>(impl_->test_runs, key, [&] {
    return single_module_test_run(cluster, module, app, seed,
                                  measure_seconds);
  });
}

std::shared_ptr<const Pmt> CalibrationCache::oracle(
    const cluster::Cluster& cluster, std::span<const hw::ModuleId> allocation,
    const workloads::Workload& app, util::SeedSequence seed) {
  std::string key = "oracle/" + app.name + '/' +
                    key_of({cluster.fingerprint(),
                            hash_allocation(allocation), seed.value()});
  return impl_->get_or_compute<Pmt>(impl_->pmts, key, [&] {
    return oracle_pmt(cluster, allocation, app, seed);
  });
}

std::shared_ptr<const Pmt> CalibrationCache::scheme_pmt(
    SchemeKind kind, const cluster::Cluster& cluster,
    std::span<const hw::ModuleId> allocation, const workloads::Workload& app,
    const Pvt& pvt, const TestRunResult& test, util::SeedSequence seed) {
  return scheme_pmt(scheme_name(kind), cluster, allocation, app, pvt, test,
                    seed, [&] {
                      return core::scheme_pmt(kind, cluster, allocation, app,
                                              pvt, test, seed);
                    });
}

std::shared_ptr<const Pmt> CalibrationCache::scheme_pmt(
    const std::string& scheme, const cluster::Cluster& cluster,
    std::span<const hw::ModuleId> allocation, const workloads::Workload& app,
    const Pvt& pvt, const TestRunResult& test, util::SeedSequence seed,
    const std::function<Pmt()>& build, std::uint64_t fault_fingerprint) {
  std::string key = "pmt/" + scheme + '/' + app.name + '/' +
                    key_of({cluster.fingerprint(),
                            hash_allocation(allocation), hash_pvt(pvt),
                            hash_test(test), seed.value(),
                            fault_fingerprint});
  return impl_->get_or_compute<Pmt>(impl_->pmts, key, build);
}

void CalibrationCache::clear() {
  std::lock_guard lock(impl_->mutex);
  impl_->pvts.clear();
  impl_->test_runs.clear();
  impl_->pmts.clear();
  impl_->lru.clear();
}

void CalibrationCache::set_capacity(std::size_t max_entries) {
  std::lock_guard lock(impl_->mutex);
  impl_->capacity = max_entries;
  impl_->enforce_capacity();
}

std::size_t CalibrationCache::capacity() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->capacity;
}

CalibrationCache::Stats CalibrationCache::stats() const {
  std::lock_guard lock(impl_->mutex);
  Stats s;
  s.hits = impl_->hits;
  s.misses = impl_->misses;
  s.evictions = impl_->evictions;
  s.entries = impl_->population();
  s.capacity = impl_->capacity;
  return s;
}

}  // namespace vapb::core
