// Phase-aware dynamic power reallocation (the paper's second future-work
// direction: "explore dynamic reallocation of power within and between HPC
// applications by analyzing their phase behavior").
//
// Real applications alternate between phases with different power/
// performance characteristics (e.g. a compute-bound solve followed by a
// bandwidth-bound exchange). A *static* budget must be solved against a
// single blended profile, so during compute-light phases power is left on
// the table and during compute-heavy phases the common frequency is lower
// than the phase could afford. The dynamic budgeter re-runs the alpha solve
// at every phase boundary against that phase's own calibrated PMT.
#pragma once

#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/runner.hpp"

namespace vapb::core {

/// One phase of a phased application: a workload model plus how many
/// iterations of it run before the next phase boundary.
struct Phase {
  const workloads::Workload* workload = nullptr;
  int iterations = 0;
};

struct PhasedApplication {
  std::string name;
  std::vector<Phase> phases;

  /// A blended single-profile view of the application (iteration-weighted
  /// average of the phase power profiles and timing) — what a phase-blind
  /// test run would measure. Used by the static baseline.
  [[nodiscard]] workloads::Workload blended() const;
};

struct PhaseOutcome {
  std::string workload;
  double alpha = 0.0;
  double target_freq_ghz = 0.0;
  double makespan_s = 0.0;
  double avg_power_w = 0.0;
};

struct DynamicRunResult {
  std::vector<PhaseOutcome> phases;
  double makespan_s = 0.0;       ///< sum of phase makespans
  double peak_power_w = 0.0;     ///< max over phases of total power
  double energy_j = 0.0;         ///< integral of total power over time
};

/// Runs `app` under `scheme` with the budget re-solved at every phase
/// boundary (each phase gets its own calibrated PMT). The budget applies to
/// every phase individually — the constraint is a power cap, not an energy
/// cap. Throws InvalidArgument on an empty phase list.
DynamicRunResult run_phased_dynamic(Campaign& campaign,
                                    const PhasedApplication& app,
                                    SchemeKind scheme, double budget_w);

/// The static baseline: one solve against the blended profile, the same
/// allocation applied to every phase (each phase still *executes* with its
/// own true characteristics, so a blended cap mispredicts both phases —
/// in particular it can violate the budget during the phase whose DRAM or
/// CPU demand the blend underestimates).
DynamicRunResult run_phased_static(Campaign& campaign,
                                   const PhasedApplication& app,
                                   SchemeKind scheme, double budget_w);

/// An HPL-like phased application: compute-dominated panel/update phases
/// (the *DGEMM kernel the paper notes is "the main kernel for the High
/// Performance Linpack benchmark") alternating with bandwidth-dominated
/// swap/broadcast phases. The canonical input for the dynamic-vs-static
/// comparison.
PhasedApplication hpl_like_application(int panels = 4,
                                       int update_iters = 6,
                                       int swap_iters = 2);

/// The *safe* static baseline an operator would actually deploy: solve each
/// phase separately and apply the most conservative result (the phase with
/// the smallest alpha) to the whole run. Adheres to the budget in every
/// phase, at the cost of running the other phases slower than they could —
/// exactly the loss dynamic reallocation recovers.
DynamicRunResult run_phased_static_worstcase(Campaign& campaign,
                                             const PhasedApplication& app,
                                             SchemeKind scheme,
                                             double budget_w);

}  // namespace vapb::core
