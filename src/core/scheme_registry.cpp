#include "core/scheme_registry.hpp"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>

#include "core/stages.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace vapb::core {

void SchemeRegistry::add(std::string name, Factory factory) {
  if (name.empty()) throw InvalidArgument("SchemeRegistry: empty scheme name");
  if (!factory) {
    throw InvalidArgument("SchemeRegistry: null factory for '" + name + "'");
  }
  std::lock_guard lock(mutex_);
  auto [it, inserted] = factories_.emplace(name, std::move(factory));
  if (!inserted) {
    throw InvalidArgument("SchemeRegistry: scheme '" + name +
                          "' is already registered");
  }
  order_.push_back(std::move(name));
}

bool SchemeRegistry::contains(std::string_view name) const {
  std::lock_guard lock(mutex_);
  return factories_.find(name) != factories_.end();
}

SchemeDefinition SchemeRegistry::get(std::string_view name) const {
  Factory factory;
  {
    std::lock_guard lock(mutex_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string msg = "SchemeRegistry: unknown scheme '";
      msg += name;
      msg += '\'';
      if (order_.empty()) {
        msg += "; no schemes are registered";
      } else {
        msg += "; registered schemes (closest first):";
        for (const std::string& n : suggest_locked(name)) {
          msg += ' ';
          msg += n;
        }
      }
      throw InvalidArgument(msg);
    }
    factory = it->second;
  }
  return factory();
}

std::vector<std::string> SchemeRegistry::names() const {
  std::lock_guard lock(mutex_);
  return order_;
}

void SchemeRegistry::clear() {
  std::lock_guard lock(mutex_);
  order_.clear();
  factories_.clear();
}

std::vector<std::string> SchemeRegistry::suggestions(
    std::string_view name) const {
  std::lock_guard lock(mutex_);
  return suggest_locked(name);
}

std::vector<std::string> SchemeRegistry::suggest_locked(
    std::string_view name) const {
  // Stable sort over registration order makes equal distances keep their
  // legend positions, so the suggestion list is deterministic.
  std::vector<std::string> out = order_;
  std::stable_sort(out.begin(), out.end(),
                   [name](const std::string& a, const std::string& b) {
                     return util::edit_distance(name, a) <
                            util::edit_distance(name, b);
                   });
  return out;
}

namespace {

// One shared instance of each stateless stage serves every definition.
SchemeDefinition compose(std::string name, Enforcement enforcement,
                         bool variation_aware, bool oracle,
                         std::shared_ptr<const PowerModelStage> power_model) {
  SchemeDefinition def;
  def.name = std::move(name);
  def.enforcement = enforcement;
  def.variation_aware = variation_aware;
  def.oracle = oracle;
  static const auto calibration = std::make_shared<CachedCalibrationStage>();
  static const auto solve = std::make_shared<AlphaSolveStage>();
  static const auto cap =
      std::make_shared<PmmdEnforcementStage>(Enforcement::kPowerCap);
  static const auto freq =
      std::make_shared<PmmdEnforcementStage>(Enforcement::kFreqSelect);
  static const auto execute = std::make_shared<DesExecutionStage>();
  def.calibration = calibration;
  def.power_model = std::move(power_model);
  def.budget_solve = solve;
  def.enforcement_stage =
      enforcement == Enforcement::kPowerCap ? cap : freq;
  def.execution = execute;
  return def;
}

void register_builtins(SchemeRegistry& r) {
  const auto naive = std::make_shared<NaivePmtStage>();
  const auto averaged = std::make_shared<AveragedCalibratedPmtStage>();
  const auto calibrated = std::make_shared<CalibratedPmtStage>();
  const auto oracle = std::make_shared<OraclePmtStage>();
  r.add("Naive", [naive] {
    return compose("Naive", Enforcement::kPowerCap, false, false, naive);
  });
  r.add("Pc", [averaged] {
    return compose("Pc", Enforcement::kPowerCap, false, false, averaged);
  });
  r.add("VaPcOr", [oracle] {
    return compose("VaPcOr", Enforcement::kPowerCap, true, true, oracle);
  });
  r.add("VaPc", [calibrated] {
    return compose("VaPc", Enforcement::kPowerCap, true, false, calibrated);
  });
  r.add("VaFsOr", [oracle] {
    return compose("VaFsOr", Enforcement::kFreqSelect, true, true, oracle);
  });
  r.add("VaFs", [calibrated] {
    return compose("VaFs", Enforcement::kFreqSelect, true, false, calibrated);
  });
  // The fault-tolerant counterparts (appended after the legend six so the
  // legend order is undisturbed): variation-aware calibration plus a static
  // guard band on the solve and violation-triggered re-budgeting around the
  // execution. Under a clean run they behave like a slightly conservative
  // VaPc/VaFs; under injected faults they trade a few percent of head-room
  // for a far lower budget-violation rate.
  for (Enforcement enf : {Enforcement::kPowerCap, Enforcement::kFreqSelect}) {
    const std::string name =
        enf == Enforcement::kPowerCap ? "VaPcRobust" : "VaFsRobust";
    r.add(name, [name, enf, calibrated] {
      SchemeDefinition def =
          compose(name, enf, /*variation_aware=*/true, /*oracle=*/false,
                  calibrated);
      static const auto guarded_solve =
          std::make_shared<GuardBandSolveStage>();
      static const auto resolve_cap = std::make_shared<ResolveOnViolationStage>(
          Enforcement::kPowerCap, guarded_solve->guard_frac());
      static const auto resolve_freq =
          std::make_shared<ResolveOnViolationStage>(
              Enforcement::kFreqSelect, guarded_solve->guard_frac());
      def.budget_solve = guarded_solve;
      def.execution =
          enf == Enforcement::kPowerCap ? resolve_cap : resolve_freq;
      return def;
    });
  }
}

}  // namespace

SchemeRegistry& SchemeRegistry::global() {
  static SchemeRegistry registry;
  static const bool seeded = [] {
    register_builtins(registry);
    return true;
  }();
  static_cast<void>(seeded);
  return registry;
}

}  // namespace vapb::core
