#include "core/scheme_registry.hpp"

#include <memory>
#include <utility>

#include "core/stages.hpp"
#include "util/error.hpp"

namespace vapb::core {

void SchemeRegistry::add(std::string name, Factory factory) {
  if (name.empty()) throw InvalidArgument("SchemeRegistry: empty scheme name");
  if (!factory) {
    throw InvalidArgument("SchemeRegistry: null factory for '" + name + "'");
  }
  std::lock_guard lock(mutex_);
  auto [it, inserted] = factories_.emplace(name, std::move(factory));
  if (!inserted) {
    throw InvalidArgument("SchemeRegistry: scheme '" + name +
                          "' is already registered");
  }
  order_.push_back(std::move(name));
}

bool SchemeRegistry::contains(std::string_view name) const {
  std::lock_guard lock(mutex_);
  return factories_.find(name) != factories_.end();
}

SchemeDefinition SchemeRegistry::get(std::string_view name) const {
  Factory factory;
  {
    std::lock_guard lock(mutex_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string msg = "SchemeRegistry: unknown scheme '";
      msg += name;
      msg += "'; registered schemes:";
      for (const std::string& n : order_) {
        msg += ' ';
        msg += n;
      }
      throw InvalidArgument(msg);
    }
    factory = it->second;
  }
  return factory();
}

std::vector<std::string> SchemeRegistry::names() const {
  std::lock_guard lock(mutex_);
  return order_;
}

namespace {

// One shared instance of each stateless stage serves every definition.
SchemeDefinition compose(std::string name, Enforcement enforcement,
                         bool variation_aware, bool oracle,
                         std::shared_ptr<const PowerModelStage> power_model) {
  SchemeDefinition def;
  def.name = std::move(name);
  def.enforcement = enforcement;
  def.variation_aware = variation_aware;
  def.oracle = oracle;
  static const auto calibration = std::make_shared<CachedCalibrationStage>();
  static const auto solve = std::make_shared<AlphaSolveStage>();
  static const auto cap =
      std::make_shared<PmmdEnforcementStage>(Enforcement::kPowerCap);
  static const auto freq =
      std::make_shared<PmmdEnforcementStage>(Enforcement::kFreqSelect);
  static const auto execute = std::make_shared<DesExecutionStage>();
  def.calibration = calibration;
  def.power_model = std::move(power_model);
  def.budget_solve = solve;
  def.enforcement_stage =
      enforcement == Enforcement::kPowerCap ? cap : freq;
  def.execution = execute;
  return def;
}

void register_builtins(SchemeRegistry& r) {
  const auto naive = std::make_shared<NaivePmtStage>();
  const auto averaged = std::make_shared<AveragedCalibratedPmtStage>();
  const auto calibrated = std::make_shared<CalibratedPmtStage>();
  const auto oracle = std::make_shared<OraclePmtStage>();
  r.add("Naive", [naive] {
    return compose("Naive", Enforcement::kPowerCap, false, false, naive);
  });
  r.add("Pc", [averaged] {
    return compose("Pc", Enforcement::kPowerCap, false, false, averaged);
  });
  r.add("VaPcOr", [oracle] {
    return compose("VaPcOr", Enforcement::kPowerCap, true, true, oracle);
  });
  r.add("VaPc", [calibrated] {
    return compose("VaPc", Enforcement::kPowerCap, true, false, calibrated);
  });
  r.add("VaFsOr", [oracle] {
    return compose("VaFsOr", Enforcement::kFreqSelect, true, true, oracle);
  });
  r.add("VaFs", [calibrated] {
    return compose("VaFs", Enforcement::kFreqSelect, true, false, calibrated);
  });
}

}  // namespace

SchemeRegistry& SchemeRegistry::global() {
  static SchemeRegistry registry;
  static const bool seeded = [] {
    register_builtins(registry);
    return true;
  }();
  static_cast<void>(seeded);
  return registry;
}

}  // namespace vapb::core
