// End-to-end application execution under a power-allocation scheme:
// build the scheme's PMT, solve the budget, apply the per-module settings
// (RAPL caps or cpufreq frequencies) through a PMMD session, execute the
// workload on the discrete-event MPI runtime, and collect the paper's
// metrics (Vp, Vf, Vt, makespan, total power).
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/budget.hpp"
#include "core/pmmd.hpp"
#include "core/schemes.hpp"
#include "des/engine.hpp"
#include "workloads/programs.hpp"

namespace vapb::util {
class Telemetry;
}  // namespace vapb::util

namespace vapb::fault {
class FaultInjector;
}  // namespace vapb::fault

namespace vapb::cluster {
class PowerTree;  // cluster/power_tree.hpp
}  // namespace vapb::cluster

namespace vapb::core {

struct RunContext;  // pipeline.hpp

struct RunConfig {
  int iterations = 0;  ///< 0 = the workload's default
  bool turbo = false;  ///< allow opportunistic turbo when uncapped
  hw::RaplConfig rapl{};
  des::NetworkModel network{};
  /// Optional hierarchical capacity model (not owned, may be null; must
  /// outlive every run that uses this config). Budget-solve stages then run
  /// the hierarchical solve against it; null budgets flat — the 1-level
  /// degenerate tree — which is bit-identical to solve_budget.
  const cluster::PowerTree* tree = nullptr;
  /// Distinguishes repeated runs of the same configuration (fresh noise).
  std::uint64_t run_salt = 0;
  /// Optional per-stage timing sink threaded through pipeline runs (not
  /// owned, may be null). Timings are observability-only and never feed
  /// back into results.
  util::Telemetry* telemetry = nullptr;
  /// Optional fault injector applied at the pipeline seams (not owned, may
  /// be null; must outlive every run that uses this config). Null keeps
  /// runs bit-identical to an injection-free build.
  const fault::FaultInjector* fault = nullptr;
};

/// Where one module ended up during the run.
struct ModuleOutcome {
  hw::ModuleId id = 0;
  double alloc_module_w = 0.0;  ///< scheme's module power allocation (0 = none)
  double cpu_cap_w = 0.0;       ///< enforced RAPL cap (0 = none)
  hw::OperatingPoint op;        ///< sustained operating point
};

struct RunMetrics {
  std::string workload;
  std::string scheme;   ///< scheme label, or "Uncapped"
  double budget_w = 0.0;  ///< application-level constraint (0 = none)

  bool feasible = true;     ///< false: modules cannot run even at fmin
  bool constrained = true;  ///< false: the budget was not binding

  double alpha = 1.0;
  double target_freq_ghz = 0.0;

  std::vector<ModuleOutcome> modules;
  des::RunResult des;
  double makespan_s = 0.0;
  double total_power_w = 0.0;      ///< sum of sustained module powers
  double total_cpu_power_w = 0.0;
  double total_dram_power_w = 0.0;

  // Paper Table 3 metrics over this run.
  [[nodiscard]] double vp() const;  ///< module power max/min
  [[nodiscard]] double vf() const;  ///< perf-frequency max/min
  [[nodiscard]] double vt_raw() const;  ///< per-rank finish time max/min

  /// Borrowed view, lazily filled from `modules` and cached (same idiom as
  /// des::RunResult::finish_times()) — Vp and the power summaries hit this
  /// repeatedly per run.
  [[nodiscard]] const std::vector<double>& module_powers_w() const;
  [[nodiscard]] std::vector<double> cpu_powers_w() const;
  [[nodiscard]] std::vector<double> dram_powers_w() const;
  [[nodiscard]] std::vector<double> perf_freqs_ghz() const;

 private:
  mutable std::vector<double> module_powers_cache_;
};

class Runner {
 public:
  /// `allocation` — the module ids the scheduler granted the job (one MPI
  /// rank per module, the paper's configuration).
  Runner(const cluster::Cluster& cluster,
         std::vector<hw::ModuleId> allocation, RunConfig config = {});

  [[nodiscard]] const std::vector<hw::ModuleId>& allocation() const {
    return allocation_;
  }

  [[nodiscard]] const RunConfig& config() const { return config_; }

  /// Unconstrained reference run (the normalization baseline).
  [[nodiscard]] RunMetrics run_uncapped(const workloads::Workload& w) const;

  /// Full pipeline for one registered scheme at one application-level
  /// budget: resolves `scheme` through SchemeRegistry::global() and runs
  /// its stage composition.
  [[nodiscard]] RunMetrics run_scheme(const workloads::Workload& w,
                                      const std::string& scheme,
                                      double budget_w, const Pvt& pvt,
                                      const TestRunResult& test) const;

  /// Enum convenience for the built-in schemes; forwards to the name form.
  [[nodiscard]] RunMetrics run_scheme(const workloads::Workload& w,
                                      SchemeKind scheme, double budget_w,
                                      const Pvt& pvt,
                                      const TestRunResult& test) const;

  /// The seed subtree run_scheme hands to the power-model stage. Exposed so
  /// callers that build the PMT themselves (e.g. through the
  /// CalibrationCache) reproduce run_scheme's results bit-for-bit.
  [[nodiscard]] static util::SeedSequence scheme_seed(
      const cluster::Cluster& cluster, const workloads::Workload& w,
      const std::string& scheme);
  [[nodiscard]] static util::SeedSequence scheme_seed(
      const cluster::Cluster& cluster, const workloads::Workload& w,
      SchemeKind scheme);

  /// Lower-level entry: execute under an explicit budgeting result.
  [[nodiscard]] RunMetrics run_budgeted(const workloads::Workload& w,
                                        Enforcement enforcement,
                                        const BudgetResult& budget,
                                        const std::string& label,
                                        double budget_w) const;

  /// Raw DES execution at explicit operating points — the pipeline's
  /// execution stage calls back into this; it draws all noise from the
  /// canonical (cluster seed, workload, label, salt) subtree.
  [[nodiscard]] RunMetrics execute(const workloads::Workload& w,
                                   const std::vector<hw::OperatingPoint>& ops,
                                   bool rapl_jitter,
                                   const std::string& label) const;

 private:
  /// Seeds a RunContext with this runner's cluster/allocation/telemetry.
  [[nodiscard]] RunContext make_context(const workloads::Workload& w,
                                        const std::string& scheme,
                                        double budget_w) const;

  const cluster::Cluster& cluster_;
  std::vector<hw::ModuleId> allocation_;
  RunConfig config_;
};

/// Per-rank execution times of `run` normalized to `baseline` (the paper's
/// Figure 2(iii)/8(i) x-axis). Both runs must cover the same ranks.
std::vector<double> normalized_times(const RunMetrics& run,
                                     const RunMetrics& baseline);

/// Worst-case normalized-execution-time variation (Vt as the paper uses it).
double vt_normalized(const RunMetrics& run, const RunMetrics& baseline);

/// makespan(baseline) / makespan(run) — Figure 7's speedup metric when
/// `baseline` is the Naive run at the same budget.
double speedup(const RunMetrics& run, const RunMetrics& baseline);

}  // namespace vapb::core
