#include "core/budget.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/reduce.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace vapb::core {

namespace {

/// The Eq. 6 alpha solve over one aggregate table (a node's subtree totals),
/// with the flat solve's exact arithmetic: raw alpha for the constrained
/// flag, clamped alpha for the fill, proportional best-effort scale when the
/// grant lands below the fmin floor.
struct AlphaScale {
  double alpha_raw = 0.0;  ///< unclamped Eq. 6 coefficient
  double alpha = 0.0;      ///< clamped to [0, 1]
  double scale = 1.0;      ///< best-effort shrink when !fits
  bool fits = true;        ///< grant >= fmin floor
};

AlphaScale solve_alpha(double grant_w, double min_w, double max_w) {
  AlphaScale r;
  if (max_w - min_w <= 1e-12) {
    // Degenerate table (fmax == fmin power): any alpha realizes the same
    // power; use 1 so the frequency target is fmax.
    r.alpha_raw = grant_w >= min_w ? 1.0 : 0.0;
  } else {
    r.alpha_raw = (grant_w - min_w) / (max_w - min_w);  // Eq. 6
  }
  r.fits = grant_w >= min_w;
  r.alpha = std::clamp(r.alpha_raw, 0.0, 1.0);
  r.scale = r.fits ? 1.0 : grant_w / min_w;
  return r;
}

/// Per-node solver state alongside PowerTree::nodes().
struct NodeState {
  double min_w = 0.0;     ///< subtree power at fmin (sum of module mins)
  double max_w = 0.0;     ///< subtree power at fmax
  double usable_w = 0.0;  ///< what the subtree can absorb: min(capacity,
                          ///< children's usable sum; leaf: max_w)
  double grant_w = 0.0;   ///< power granted by the parent
  AlphaScale fill;        ///< leaf groups: the local flat solve
};

}  // namespace

PmtSoA PmtSoA::gather(const Pmt& pmt) {
  const std::vector<PmtEntry>& entries = pmt.entries();
  const std::size_t n = entries.size();
  PmtSoA soa;
  soa.cpu_min_w.resize(n);
  soa.cpu_span_w.resize(n);
  soa.dram_min_w.resize(n);
  soa.dram_span_w.resize(n);
  soa.module_min_w.resize(n);
  soa.module_max_w.resize(n);
  soa.device_class.resize(n);
  util::parallel_for(
      n,
      [&](std::size_t i) {
        const PmtEntry& e = entries[i];
        soa.cpu_min_w[i] = e.cpu_min_w.value();
        soa.cpu_span_w[i] = (e.cpu_max_w - e.cpu_min_w).value();
        soa.dram_min_w[i] = e.dram_min_w.value();
        soa.dram_span_w[i] = (e.dram_max_w - e.dram_min_w).value();
        soa.module_min_w[i] = e.module_min_w().value();
        soa.module_max_w[i] = e.module_max_w().value();
        soa.device_class[i] = static_cast<std::uint8_t>(pmt.device_class(i));
      },
      1024);
  return soa;
}

BudgetResult solve_budget(const Pmt& pmt, util::Watts budget_w) {
  return solve_budget_tree(pmt, cluster::PowerTree::flat(pmt.size()),
                           budget_w);
}

BudgetResult solve_budget_tree(const Pmt& pmt, const cluster::PowerTree& tree,
                               util::Watts budget_w) {
  if (budget_w <= util::Watts{0.0}) {
    throw InvalidArgument("solve_budget: budget <= 0");
  }
  if (tree.module_count() != pmt.size()) {
    throw InvalidArgument("solve_budget_tree: tree covers " +
                          std::to_string(tree.module_count()) +
                          " modules, PMT has " + std::to_string(pmt.size()));
  }

  const PmtSoA soa = PmtSoA::gather(pmt);
  const std::vector<cluster::PowerTreeNode>& nodes = tree.nodes();
  std::vector<NodeState> ns(nodes.size());

  // Bottom-up aggregation: subtree fmin/fmax totals and usable capacity.
  // Leaf-group sums use the chunked association; interior sums run over the
  // (few) children in order.
  for (std::size_t k = tree.level_count(); k-- > 0;) {
    const std::span<const cluster::PowerTreeNode> lvl = tree.level(k);
    const std::size_t base =
        static_cast<std::size_t>(lvl.data() - nodes.data());
    for (std::size_t j = 0; j < lvl.size(); ++j) {
      const cluster::PowerTreeNode& node = lvl[j];
      NodeState& s = ns[base + j];
      if (node.leaf_group()) {
        const std::size_t begin = node.module_begin;
        s.min_w = util::chunked_sum(node.module_count(), [&](std::size_t i) {
          return soa.module_min_w[begin + i];
        });
        s.max_w = util::chunked_sum(node.module_count(), [&](std::size_t i) {
          return soa.module_max_w[begin + i];
        });
        s.usable_w = std::min(node.capacity_w, s.max_w);
      } else {
        const NodeState* child = &ns[node.first_child];
        const std::size_t cn = node.child_count;
        s.min_w = util::chunked_sum(
            cn, [&](std::size_t c) { return child[c].min_w; });
        s.max_w = util::chunked_sum(
            cn, [&](std::size_t c) { return child[c].max_w; });
        const double usable_w = util::chunked_sum(
            cn, [&](std::size_t c) { return child[c].usable_w; });
        s.usable_w = std::min(node.capacity_w, usable_w);
      }
    }
  }

  // Top-down reconciliation: the root's grant is the application budget
  // (never above the root enclosure's own capacity); every interior node
  // water-fills its children.
  bool any_clamp = false;
  ns[0].grant_w = std::min(budget_w.value(), nodes[0].capacity_w);
  for (std::size_t k = 0; k + 1 < tree.level_count(); ++k) {
    const std::span<const cluster::PowerTreeNode> lvl = tree.level(k);
    const std::size_t base =
        static_cast<std::size_t>(lvl.data() - nodes.data());
    for (std::size_t j = 0; j < lvl.size(); ++j) {
      const cluster::PowerTreeNode& node = lvl[j];
      if (node.leaf_group()) continue;
      const std::uint32_t c0 = node.first_child;
      const std::uint32_t cn = node.child_count;
      std::vector<char> clamped(cn, 0);
      for (std::uint32_t round = 0; round < cn; ++round) {
        // Chunked association keeps every per-round aggregate a pure
        // function of the child values, independent of how (or whether)
        // these rounds ever parallelize. Clamped children contribute an
        // exact 0.0 to the active sums (and vice versa), which leaves each
        // sum bit-equal to accumulating the matching subset in child order.
        const double clamped_w = util::chunked_sum(cn, [&](std::size_t i) {
          return clamped[i] != 0 ? ns[c0 + i].grant_w : 0.0;
        });
        const double min_a = util::chunked_sum(cn, [&](std::size_t i) {
          return clamped[i] != 0 ? 0.0 : ns[c0 + i].min_w;
        });
        const double max_a = util::chunked_sum(cn, [&](std::size_t i) {
          return clamped[i] != 0 ? 0.0 : ns[c0 + i].max_w;
        });
        std::uint32_t active = 0;
        for (std::uint32_t i = 0; i < cn; ++i) {
          if (clamped[i] == 0) ++active;
        }
        if (active == 0) break;
        const double grant_a = ns[base + j].grant_w - clamped_w;
        const AlphaScale a = solve_alpha(grant_a, min_a, max_a);
        bool changed = false;
        for (std::uint32_t i = 0; i < cn; ++i) {
          if (clamped[i] != 0) continue;
          NodeState& c = ns[c0 + i];
          const double demand_w =
              a.fits ? c.min_w + a.alpha * (c.max_w - c.min_w)
                     : c.min_w * a.scale;
          if (demand_w > c.usable_w) {
            // This child's enclosure (or subtree) cannot absorb its share:
            // pin it at its usable capacity and hand the surplus back to the
            // siblings in the next round.
            c.grant_w = c.usable_w;
            clamped[i] = 1;
            changed = true;
            any_clamp = true;
          } else {
            c.grant_w = demand_w;
          }
        }
        if (!changed) break;
      }
    }
  }

  // Local flat solves at the leaf groups.
  const std::span<const cluster::PowerTreeNode> leaves =
      tree.level(tree.level_count() - 1);
  const std::size_t leaf_base =
      static_cast<std::size_t>(leaves.data() - nodes.data());
  bool leaves_fit = true;
  for (std::size_t j = 0; j < leaves.size(); ++j) {
    NodeState& s = ns[leaf_base + j];
    if (tree.level_count() == 1) s.grant_w = ns[0].grant_w;
    s.fill = solve_alpha(s.grant_w, s.min_w, s.max_w);
    leaves_fit = leaves_fit && s.fill.fits;
  }

  BudgetResult r;
  const AlphaScale root = tree.trivial()
                              ? ns[0].fill
                              : solve_alpha(ns[0].grant_w, ns[0].min_w,
                                            ns[0].max_w);
  r.fits_at_fmin = root.fits && leaves_fit;
  r.constrained = root.alpha_raw < 1.0 || any_clamp;
  r.alpha = root.alpha;
  r.target_freq_ghz = pmt.freq_at(r.alpha);

  // Per-module fill (Eq. 7-9) with the enclosing leaf group's coefficient —
  // flat affine math over the SoA arrays, chunked across the pool. The
  // arithmetic matches the flat solve expression for expression, so the
  // 1-level tree reproduces it bit-for-bit.
  r.allocations.resize(pmt.size());
  std::vector<ModuleBudget>& out = r.allocations;
  const auto fill_leaf = [&](std::size_t j) {
    const cluster::PowerTreeNode& node = leaves[j];
    const NodeState& s = ns[leaf_base + j];
    const double alpha = s.fill.alpha;
    const double scale = s.fill.scale;
    for (std::size_t m = node.module_begin; m < node.module_end; ++m) {
      const double cpu_w = alpha * soa.cpu_span_w[m] + soa.cpu_min_w[m];
      const double dram_w = alpha * soa.dram_span_w[m] + soa.dram_min_w[m];
      ModuleBudget& mb = out[m];
      mb.module_w = util::Watts{(cpu_w + dram_w) * scale};  // Eq. 7
      mb.dram_w = util::Watts{dram_w * scale};
      mb.cpu_cap_w = mb.module_w - mb.dram_w;               // Eq. 8-9
      VAPB_REQUIRE_MSG(mb.cpu_cap_w > util::Watts{0.0},
                       "derived CPU cap must be positive (bad PMT?)");
    }
  };
  if (leaves.size() > 1) {
    util::parallel_for(leaves.size(), fill_leaf, 1);
  } else {
    util::parallel_for(
        pmt.size(),
        [&](std::size_t m) {
          const double alpha = ns[leaf_base].fill.alpha;
          const double scale = ns[leaf_base].fill.scale;
          const double cpu_w = alpha * soa.cpu_span_w[m] + soa.cpu_min_w[m];
          const double dram_w =
              alpha * soa.dram_span_w[m] + soa.dram_min_w[m];
          ModuleBudget& mb = out[m];
          mb.module_w = util::Watts{(cpu_w + dram_w) * scale};
          mb.dram_w = util::Watts{dram_w * scale};
          mb.cpu_cap_w = mb.module_w - mb.dram_w;
          VAPB_REQUIRE_MSG(mb.cpu_cap_w > util::Watts{0.0},
                           "derived CPU cap must be positive (bad PMT?)");
        },
        1024);
  }
  r.predicted_total_w = util::chunked_sum(
      out.size(), [&](std::size_t i) { return out[i].module_w; });
  return r;
}

BudgetResult solve_budget_strict(const Pmt& pmt, util::Watts budget_w) {
  BudgetResult r = solve_budget(pmt, budget_w);
  if (!r.fits_at_fmin) {
    throw InfeasibleBudget(
        "budget " + util::fmt_watts(budget_w) + " is below the fmin floor " +
        util::fmt_watts(pmt.total_min_w()) + " of the allocated modules");
  }
  return r;
}

}  // namespace vapb::core
