#include "core/budget.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace vapb::core {

BudgetResult solve_budget(const Pmt& pmt, util::Watts budget_w) {
  if (budget_w <= util::Watts{0.0}) {
    throw InvalidArgument("solve_budget: budget <= 0");
  }

  BudgetResult r;
  const util::Watts total_min = pmt.total_min_w();
  const util::Watts total_max = pmt.total_max_w();

  double alpha;
  if (total_max - total_min <= util::Watts{1e-12}) {
    // Degenerate PMT (fmax == fmin power): any alpha realizes the same
    // power; use 1 so the frequency target is fmax.
    alpha = budget_w >= total_min ? 1.0 : 0.0;
  } else {
    alpha = (budget_w - total_min) / (total_max - total_min);  // Eq. 6
  }
  r.fits_at_fmin = budget_w >= total_min;
  r.constrained = alpha < 1.0;
  r.alpha = std::clamp(alpha, 0.0, 1.0);
  r.target_freq_ghz = pmt.freq_at(r.alpha);

  // Best effort below the table's fmin floor: shrink every allocation
  // proportionally so the predicted total still meets the budget (the caps
  // then land below the predicted fmin powers and RAPL throttles).
  const double scale =
      r.fits_at_fmin ? 1.0 : budget_w / total_min;

  r.allocations.reserve(pmt.size());
  for (const PmtEntry& e : pmt.entries()) {
    ModuleBudget mb;
    mb.module_w = e.module_at(r.alpha) * scale;      // Eq. 7
    mb.dram_w = e.dram_at(r.alpha) * scale;
    mb.cpu_cap_w = mb.module_w - mb.dram_w;          // Eq. 8-9
    VAPB_REQUIRE_MSG(mb.cpu_cap_w > util::Watts{0.0},
                     "derived CPU cap must be positive (bad PMT?)");
    r.allocations.push_back(mb);
    r.predicted_total_w += mb.module_w;
  }
  return r;
}

BudgetResult solve_budget_strict(const Pmt& pmt, util::Watts budget_w) {
  BudgetResult r = solve_budget(pmt, budget_w);
  if (!r.fits_at_fmin) {
    throw InfeasibleBudget(
        "budget " + util::fmt_watts(budget_w) + " is below the fmin floor " +
        util::fmt_watts(pmt.total_min_w()) + " of the allocated modules");
  }
  return r;
}

}  // namespace vapb::core
