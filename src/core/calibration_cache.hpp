// Process-wide memoization of the expensive, deterministic calibration
// artifacts a sweep recomputes over and over (paper Section 5): the system
// PVT, single-module application test runs, oracle per-module measurements
// and the per-scheme PMTs built from them.
//
// Every artifact is a pure function of (fleet fingerprint, allocation,
// workload, scheme kind, seed), so a cache hit is bitwise-identical to
// recomputing — campaigns stay reproducible regardless of which run warmed
// the cache. The cache is thread-safe; concurrent requests for the same key
// block on one computation and share the result (shared_future per entry).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "cluster/cluster.hpp"
#include "core/pmt.hpp"
#include "core/pvt.hpp"
#include "core/schemes.hpp"
#include "core/test_run.hpp"

namespace vapb::core {

class CalibrationCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;  ///< 0 = unbounded
  };

  CalibrationCache();
  ~CalibrationCache();
  CalibrationCache(const CalibrationCache&) = delete;
  CalibrationCache& operator=(const CalibrationCache&) = delete;

  /// The process-wide instance shared by Campaign and CampaignEngine.
  static CalibrationCache& global();

  /// Pvt::generate, memoized on (fleet, microbenchmark, seed, duration).
  std::shared_ptr<const Pvt> pvt(const cluster::Cluster& cluster,
                                 const workloads::Workload& micro,
                                 util::SeedSequence seed,
                                 double measure_seconds = 1.0);

  /// single_module_test_run, memoized on (fleet, module, app, seed,
  /// duration).
  std::shared_ptr<const TestRunResult> test_run(
      const cluster::Cluster& cluster, hw::ModuleId module,
      const workloads::Workload& app, util::SeedSequence seed,
      double measure_seconds = 10.0);

  /// oracle_pmt, memoized on (fleet, allocation, app, seed).
  std::shared_ptr<const Pmt> oracle(const cluster::Cluster& cluster,
                                    std::span<const hw::ModuleId> allocation,
                                    const workloads::Workload& app,
                                    util::SeedSequence seed);

  /// scheme_pmt with the default NaiveTable, memoized on (fleet, allocation,
  /// app, scheme kind, PVT and test-run content, seed). The PVT and test run
  /// are hashed by content, so a PVT loaded from a file caches separately
  /// from a generated one.
  std::shared_ptr<const Pmt> scheme_pmt(
      SchemeKind kind, const cluster::Cluster& cluster,
      std::span<const hw::ModuleId> allocation, const workloads::Workload& app,
      const Pvt& pvt, const TestRunResult& test, util::SeedSequence seed);

  /// Name-keyed variant for registry schemes: `build` constructs the PMT on
  /// a miss. The key format matches the kind-keyed overload (which delegates
  /// here with fingerprint 0), so built-in schemes share entries regardless
  /// of which overload warmed the cache. `fault_fingerprint` is the active
  /// fault scenario's fingerprint (0 = no faults): two different scenarios
  /// — in particular two different scenario seeds — can never share an
  /// entry, even when their perturbed calibration artifacts happen to hash
  /// alike.
  std::shared_ptr<const Pmt> scheme_pmt(
      const std::string& scheme, const cluster::Cluster& cluster,
      std::span<const hw::ModuleId> allocation, const workloads::Workload& app,
      const Pvt& pvt, const TestRunResult& test, util::SeedSequence seed,
      const std::function<Pmt()>& build, std::uint64_t fault_fingerprint = 0);

  /// Drops every entry (e.g. to measure cold-cache cost).
  void clear();

  /// Bounds the cache to at most `max_entries` artifacts, evicting the
  /// least-recently-used entries first (a hit refreshes recency). 0 — the
  /// default — keeps the historical unbounded behavior. Shrinking below the
  /// current population evicts immediately. Evicting an entry that waiters
  /// are still computing is safe: they hold their own reference and a later
  /// request simply recomputes the (deterministic, bit-identical) artifact.
  void set_capacity(std::size_t max_entries);

  [[nodiscard]] std::size_t capacity() const;

  [[nodiscard]] Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vapb::core
