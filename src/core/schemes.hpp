// The six power-allocation schemes of the evaluation (paper Section 6):
//
//   Naive   — application-independent, variation-unaware: PMT maxima from
//             TDP, minima empirical; uniform allocations; RAPL capping.
//   Pc      — application-dependent, variation-unaware: fleet-average PMT;
//             uniform allocations; RAPL capping.
//   VaPc    — application-dependent, variation-aware (PVT-calibrated PMT);
//             RAPL capping.
//   VaPcOr  — VaPc with an oracle PMT (application measured on every module).
//   VaFs    — variation-aware with static frequency selection (cpufrequtils).
//   VaFsOr  — VaFs with an oracle PMT.
#pragma once

#include <string>
#include <vector>

#include "core/pmt.hpp"
#include "core/pvt.hpp"
#include "util/units.hpp"

namespace vapb::core {

enum class SchemeKind { kNaive, kPc, kVaPc, kVaPcOr, kVaFs, kVaFsOr };

enum class Enforcement {
  kPowerCap,    ///< RAPL CPU power cap per module
  kFreqSelect,  ///< cpufrequtils static frequency per module
};

[[nodiscard]] Enforcement enforcement_of(SchemeKind kind);
[[nodiscard]] bool is_variation_aware(SchemeKind kind);
[[nodiscard]] bool is_oracle(SchemeKind kind);
[[nodiscard]] std::string scheme_name(SchemeKind kind);

/// All schemes in Figure 7's legend order.
std::vector<SchemeKind> all_schemes();

/// Naive's TDP-based table values (HA8K: 130 W CPU / 62 W DRAM TDP; the
/// empirical minima the paper reports are 40 W CPU / 10 W DRAM).
struct NaiveTable {
  util::Watts tdp_cpu_w{130.0};
  util::Watts tdp_dram_w{62.0};
  util::Watts min_cpu_w{40.0};
  util::Watts min_dram_w{10.0};
};

/// Builds the PMT a scheme would use for `app` on `allocation`.
///  * kNaive         — constant TDP-based table (`naive`);
///  * kPc            — fleet average of the calibrated table;
///  * kVaPc / kVaFs  — PVT-calibrated from the single-module test run;
///  * kVaPcOr/kVaFsOr— oracle (per-module measurement).
/// `test` must be the single-module test run of `app`; `pvt` the system PVT.
Pmt scheme_pmt(SchemeKind kind, const cluster::Cluster& cluster,
               std::span<const hw::ModuleId> allocation,
               const workloads::Workload& app, const Pvt& pvt,
               const TestRunResult& test, util::SeedSequence seed,
               const NaiveTable& naive = {});

}  // namespace vapb::core
