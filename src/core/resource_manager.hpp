// RMAP-style power-aware resource manager (the paper's Section-7 future-work
// direction: "integrating our work with a power-aware resource manager such
// as RMAP, which can determine application-level power constraints and
// physical node allocations in a fair yet intelligent manner by using
// hardware overprovisioning").
//
// The manager owns a system-wide power budget and a fleet. For each job it
//   1. allocates physical modules from the free pool,
//   2. estimates the job's power demand from the PVT + the application's
//      single-module test run (the same cheap machinery the budgeting
//      algorithm uses),
//   3. assigns the job an application-level power budget under the chosen
//      sharing policy, never below the job's fmin floor,
// and hands the (modules, budget) pair to the variation-aware budgeting
// framework. On an overprovisioned system (more modules than the budget can
// power at fmax) jobs are admitted at reduced alpha rather than rejected, as
// long as their fmin floor fits.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/budget.hpp"
#include "core/pvt.hpp"
#include "core/test_run.hpp"
#include "workloads/workload.hpp"

namespace vapb::core {

struct JobRequest {
  std::string name;
  const workloads::Workload* app = nullptr;
  std::size_t modules = 0;
};

/// How the system budget is split among admitted jobs.
enum class PowerSharePolicy {
  kUniformPerModule,     ///< every module gets the same share of the budget
  kProportionalDemand,   ///< proportional to the job's predicted fmax demand
  kFminFirstThenDemand,  ///< guarantee every job its fmin floor, split the
                         ///< remainder proportional to (demand - floor)
};

struct JobGrant {
  JobRequest request;
  std::vector<hw::ModuleId> allocation;  ///< disjoint across grants
  double budget_w = 0.0;                 ///< application-level power budget
  BudgetResult budget;                   ///< variation-aware solve result
  Pmt pmt;                               ///< the job's calibrated PMT
};

struct ScheduleResult {
  std::vector<JobGrant> granted;
  std::vector<std::pair<JobRequest, std::string>> rejected;  ///< with reason
  double power_committed_w = 0.0;
};

class ResourceManager {
 public:
  /// Throws InvalidArgument when the budget is non-positive or the PVT does
  /// not cover the cluster.
  ResourceManager(const cluster::Cluster& cluster, const Pvt& pvt,
                  double system_budget_w);

  [[nodiscard]] double system_budget_w() const { return system_budget_w_; }

  /// Admits requests in order. A request is rejected when not enough free
  /// modules remain or when the remaining power cannot cover its fmin floor.
  /// Module allocation is first-fit contiguous from the free pool.
  /// The sum of granted budgets never exceeds the system budget, and every
  /// grant's budget is at least its PMT fmin floor.
  [[nodiscard]] ScheduleResult schedule(const std::vector<JobRequest>& requests,
                                        PowerSharePolicy policy,
                                        util::SeedSequence seed) const;

 private:
  /// Finds a contiguous block of `count` free modules; nullopt if none.
  [[nodiscard]] std::optional<std::vector<hw::ModuleId>> take_contiguous(
      std::vector<bool>& used, std::size_t count) const;

  const cluster::Cluster& cluster_;
  const Pvt& pvt_;
  double system_budget_w_;
};

}  // namespace vapb::core
