// Power Variation Table (PVT) — the application-independent description of a
// system's manufacturing variability (paper Section 5.2).
//
// Generated once, at system installation time, by running a representative
// microbenchmark on every module at the maximum and minimum CPU frequencies
// and recording each module's CPU and DRAM power relative to the fleet
// average. Four scales per module: {CPU, DRAM} x {fmax, fmin}.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "workloads/workload.hpp"

namespace vapb::core {

/// Variation scales for one module (1.0 = fleet average).
struct PvtEntry {
  double cpu_max = 1.0;   ///< CPU power scale at fmax
  double dram_max = 1.0;  ///< DRAM power scale at fmax
  double cpu_min = 1.0;   ///< CPU power scale at fmin
  double dram_min = 1.0;  ///< DRAM power scale at fmin
};

class Pvt {
 public:
  /// Generates the PVT for `cluster` with microbenchmark `micro`, measuring
  /// each module's power through the architecture's RAPL sensor model.
  /// Runs the per-module measurements on the global thread pool.
  /// `measure_seconds` is the per-module measurement duration.
  static Pvt generate(const cluster::Cluster& cluster,
                      const workloads::Workload& micro,
                      util::SeedSequence seed, double measure_seconds = 1.0);

  Pvt(std::string microbench_name, std::vector<PvtEntry> entries);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const PvtEntry& entry(hw::ModuleId id) const;
  [[nodiscard]] const std::vector<PvtEntry>& entries() const { return entries_; }
  [[nodiscard]] const std::string& microbench_name() const {
    return microbench_name_;
  }

  /// Round-trip text serialization (one line per module), so a generated PVT
  /// can be installed as a system file and reloaded.
  [[nodiscard]] std::string serialize() const;
  static Pvt deserialize(const std::string& text);

 private:
  std::string microbench_name_;
  std::vector<PvtEntry> entries_;
};

}  // namespace vapb::core
